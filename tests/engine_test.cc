#include "engine/query.h"
#include "engine/table.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "spec_menu.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/key_gen.h"

namespace cssidx::engine {
namespace {

Table MakeOrders(size_t rows, uint32_t num_customers, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint32_t> customer(rows), amount(rows), day(rows);
  for (size_t i = 0; i < rows; ++i) {
    customer[i] = rng.Below(num_customers);
    amount[i] = 1 + rng.Below(1000);
    day[i] = rng.Below(365);
  }
  Table t;
  t.AddColumn("customer", std::move(customer));
  t.AddColumn("amount", std::move(amount));
  t.AddColumn("day", std::move(day));
  return t;
}

TEST(SortIndex, EqualReturnsAllMatchingRids) {
  std::vector<uint32_t> col{5, 3, 5, 9, 3, 5};
  SortIndex index(col);
  EXPECT_EQ(index.Equal(5), (std::vector<Rid>{0, 2, 5}));
  EXPECT_EQ(index.Equal(3), (std::vector<Rid>{1, 4}));
  EXPECT_EQ(index.Equal(9), (std::vector<Rid>{3}));
  EXPECT_TRUE(index.Equal(7).empty());
}

TEST(SortIndex, RangeReturnsRidsOfValuesInRange) {
  std::vector<uint32_t> col{50, 10, 30, 20, 40};
  SortIndex index(col);
  auto rids = index.Range(15, 45);  // values 20, 30, 40
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(rids, (std::vector<Rid>{2, 3, 4}));
  EXPECT_TRUE(index.Range(45, 45).empty());
  EXPECT_TRUE(index.Range(45, 15).empty());
}

TEST(SortIndex, SortedKeysAreSortedAndComplete) {
  Pcg32 rng(3);
  std::vector<uint32_t> col(5000);
  for (auto& v : col) v = rng.Below(1000);
  SortIndex index(col);
  EXPECT_TRUE(std::is_sorted(index.sorted_keys().begin(),
                             index.sorted_keys().end()));
  EXPECT_EQ(index.sorted_keys().size(), col.size());
  // Permutation check: rids cover 0..n-1 exactly once.
  std::vector<Rid> rids = index.rids();
  std::sort(rids.begin(), rids.end());
  for (size_t i = 0; i < rids.size(); ++i) ASSERT_EQ(rids[i], i);
}

TEST(Table, ColumnManagement) {
  Table t;
  t.AddColumn("a", {1, 2, 3});
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("b"));
  EXPECT_THROW(t.Column("b"), std::out_of_range);
  EXPECT_THROW(t.AddColumn("bad", {1, 2}), std::invalid_argument);
  t.AddColumn("b", {4, 5, 6});
  EXPECT_EQ(t.NumColumns(), 2u);
}

TEST(Table, AppendRowsRebuildsIndexes) {
  Table t;
  t.AddColumn("k", {10, 20, 30});
  t.AddColumn("v", {1, 2, 3});
  t.BuildSortIndex("k");
  t.AppendRows({{"k", {15, 25}}, {"v", {4, 5}}});
  EXPECT_EQ(t.NumRows(), 5u);
  // The rebuilt index sees the new rows.
  auto rids = t.GetSortIndex("k").Range(12, 27);
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(rids, (std::vector<Rid>{1, 3, 4}));  // 20, 15, 25
}

TEST(Table, AppendRowsValidatesBatchShape) {
  Table t;
  t.AddColumn("a", {1});
  t.AddColumn("b", {2});
  EXPECT_THROW(t.AppendRows({{"a", {1}}}), std::invalid_argument);
  EXPECT_THROW(t.AppendRows({{"a", {1}}, {"z", {1}}}),
               std::invalid_argument);
  EXPECT_THROW(t.AppendRows({{"a", {1, 2}}, {"b", {1}}}),
               std::invalid_argument);
  t.AppendRows({{"a", {7}}, {"b", {8}}});
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(Query, SelectEqualIndexedMatchesScan) {
  Table t = MakeOrders(20'000, 500, 7);
  auto scan = SelectEqual(t, "customer", 42);  // no index yet: scan path
  t.BuildSortIndex("customer");
  auto indexed = SelectEqual(t, "customer", 42);
  EXPECT_EQ(scan, indexed);
  EXPECT_FALSE(indexed.empty());
}

TEST(Query, SelectRangeIndexedMatchesScan) {
  Table t = MakeOrders(20'000, 500, 9);
  auto scan = SelectRange(t, "day", 100, 200);
  t.BuildSortIndex("day");
  auto indexed = SelectRange(t, "day", 100, 200);
  std::sort(indexed.begin(), indexed.end());
  std::sort(scan.begin(), scan.end());
  EXPECT_EQ(scan, indexed);
}

TEST(Query, SelectRangeIsBitIdenticalToTheScalarBoundPath) {
  // The batch rewrite must reproduce the pre-batch implementation — two
  // scalar LowerBounds and a RID-list slice — exactly, element order
  // included, for every spec (hash's bounds fall back to binary search).
  Table t = MakeOrders(20'000, 500, 33);
  for (const char* spec_text : {"css:16", "lcss:8", "btree:32", "ttree:16",
                                "bin", "tbin", "interp", "hash:10"}) {
    t.BuildSortIndex("day", *IndexSpec::Parse(spec_text));
    const SortIndex& index = t.GetSortIndex("day");
    for (auto [lo, hi] : std::initializer_list<std::pair<uint32_t, uint32_t>>{
             {100, 200}, {0, 365}, {0, 0}, {200, 100}, {364, 365},
             {0, 0xffffffffu}}) {
      std::vector<Rid> expected;
      if (hi > lo) {
        size_t begin = index.LowerBound(lo);
        size_t end = index.LowerBound(hi);
        expected.assign(index.rids().begin() + static_cast<ptrdiff_t>(begin),
                        index.rids().begin() + static_cast<ptrdiff_t>(end));
      }
      ASSERT_EQ(SelectRange(t, "day", lo, hi), expected)
          << spec_text << " [" << lo << ", " << hi << ")";
    }
  }
}

TEST(Query, SelectRangeBatchMatchesSingleRangeCalls) {
  Table t = MakeOrders(15'000, 400, 35);
  std::vector<std::pair<uint32_t, uint32_t>> bounds{
      {0, 365}, {100, 200}, {50, 50}, {300, 100},  // empty + inverted
      {0, 1},   {364, 1000}, {42, 43}};
  // Scan path (no index) first, then every indexed spec.
  auto scan_results = SelectRangeBatch(t, "day", bounds);
  ASSERT_EQ(scan_results.size(), bounds.size());
  for (size_t b = 0; b < bounds.size(); ++b) {
    ASSERT_EQ(scan_results[b],
              SelectRange(t, "day", bounds[b].first, bounds[b].second))
        << "scan b=" << b;
  }
  for (const char* spec_text : {"css:16", "hash:10", "ttree:16"}) {
    t.BuildSortIndex("day", *IndexSpec::Parse(spec_text));
    auto results = SelectRangeBatch(t, "day", bounds);
    ASSERT_EQ(results.size(), bounds.size());
    for (size_t b = 0; b < bounds.size(); ++b) {
      ASSERT_EQ(results[b],
                SelectRange(t, "day", bounds[b].first, bounds[b].second))
          << spec_text << " b=" << b;
    }
  }
}

TEST(Query, IndexedJoinMatchesNestedLoop) {
  Table orders = MakeOrders(5'000, 200, 11);
  // Customers: ids 0..199 with a region column.
  Table customers;
  {
    std::vector<uint32_t> id(200), region(200);
    Pcg32 rng(13);
    for (uint32_t i = 0; i < 200; ++i) {
      id[i] = i;
      region[i] = rng.Below(10);
    }
    customers.AddColumn("id", std::move(id));
    customers.AddColumn("region", std::move(region));
  }
  customers.BuildSortIndex("id");

  auto pairs = IndexedJoin(orders, "customer", customers, "id");
  // Oracle: nested loop.
  size_t expected = 0;
  const auto& oc = orders.Column("customer");
  const auto& ic = customers.Column("id");
  for (size_t i = 0; i < oc.size(); ++i) {
    for (size_t j = 0; j < ic.size(); ++j) {
      if (oc[i] == ic[j]) ++expected;
    }
  }
  EXPECT_EQ(pairs.size(), expected);
  EXPECT_EQ(pairs.size(), 5'000u);  // id is a key: exactly one match each
  for (const auto& p : pairs) {
    ASSERT_EQ(orders.Column("customer")[p.outer],
              customers.Column("id")[p.inner]);
  }
}

TEST(Query, JoinWithDuplicateInnerKeys) {
  Table outer;
  outer.AddColumn("k", {1, 2, 3});
  Table inner;
  inner.AddColumn("k", {2, 2, 9, 1});
  inner.BuildSortIndex("k");
  auto pairs = IndexedJoin(outer, "k", inner, "k");
  // outer row 0 (k=1) -> inner 3; outer row 1 (k=2) -> inner 0 and 1.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(Query, AggregateBasics) {
  Table t;
  t.AddColumn("v", {10, 20, 30, 40});
  Aggregates a = Aggregate(t, "v", {0, 2, 3});
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 80u);
  EXPECT_EQ(a.min, 10u);
  EXPECT_EQ(a.max, 40u);
  Aggregates empty = Aggregate(t, "v", {});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min, 0u);
}

TEST(Query, AggregateMinMaxInitialization) {
  // Regression: Aggregates used to default min to 0, so a fold that
  // skipped re-initialization reported MIN = 0 for any row set. The
  // defaults are now fold identities.
  Aggregates a;
  a.Accumulate(7);
  a.Accumulate(3);
  a.Accumulate(9);
  EXPECT_EQ(a.min, 3u);
  EXPECT_EQ(a.max, 9u);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 19u);

  // Through the operators: all values strictly positive, min must not be 0.
  Table t;
  t.AddColumn("v", {50, 40, 60});
  Aggregates agg = Aggregate(t, "v", {0, 1, 2});
  EXPECT_EQ(agg.min, 40u);
  EXPECT_EQ(agg.max, 60u);
  Aggregates single = Aggregate(t, "v", {2});
  EXPECT_EQ(single.min, 60u);
  EXPECT_EQ(single.max, 60u);
  // GroupBy: a group whose values are all positive, plus an empty group.
  t.AddColumn("g", {0, 0, 0});
  auto groups = GroupBy(t, "g", "v", 2);
  EXPECT_EQ(groups[0].min, 40u);
  EXPECT_EQ(groups[1].count, 0u);
  EXPECT_EQ(groups[1].min, 0u);  // empty-set convention
}

TEST(Query, GroupByCountsAndSums) {
  Table t;
  t.AddColumn("g", {0, 1, 0, 2, 1, 0});
  t.AddColumn("v", {5, 10, 15, 20, 25, 35});
  auto groups = GroupBy(t, "g", "v", 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].count, 3u);
  EXPECT_EQ(groups[0].sum, 55u);
  EXPECT_EQ(groups[1].count, 2u);
  EXPECT_EQ(groups[1].sum, 35u);
  EXPECT_EQ(groups[2].count, 1u);
  EXPECT_EQ(groups[2].max, 20u);
}

TEST(Query, GroupByIndexedMatchesScanOnZipfSkewedDuplicates) {
  // The batch rewrite resolves group keys through EqualRangeBatch when the
  // group column is indexed; the scan path is the oracle. A Zipf-skewed
  // group column makes a few groups enormous and leaves others empty —
  // exactly the duplicate-run spread where span bugs hide. Both paths
  // accumulate in RID order (stable sort), so every field must match
  // bit-for-bit, including an always-empty trailing group.
  constexpr uint32_t kGroups = 64;
  ZipfGenerator zipf(kGroups - 1, /*theta=*/1.1, /*seed=*/41);
  Pcg32 rng(43);
  std::vector<uint32_t> group(50'000), value(50'000);
  for (size_t i = 0; i < group.size(); ++i) {
    group[i] = static_cast<uint32_t>(zipf.Next());
    value[i] = 1 + rng.Below(10'000);
  }
  Table t;
  t.AddColumn("g", std::move(group));
  t.AddColumn("v", std::move(value));
  auto scan = GroupBy(t, "g", "v", kGroups);
  ASSERT_EQ(scan.size(), kGroups);
  EXPECT_EQ(scan[kGroups - 1].count, 0u);  // zipf drew from [0, kGroups-1)

  // The dense query covers every row, so the selectivity gate keeps the
  // scan accumulator; a sparse query (the head groups of a much wider
  // domain) goes through the RID-list spans. Both must match the scan
  // oracle exactly, for every spec.
  constexpr uint32_t kSparseGroups = 8;
  ZipfGenerator wide(5000, /*theta=*/0.8, /*seed=*/45);
  std::vector<uint32_t> wide_group(50'000);
  for (auto& g : wide_group) g = static_cast<uint32_t>(wide.Next());
  Table sparse;
  sparse.AddColumn("g", std::move(wide_group));
  sparse.AddColumn("v", t.Column("v"));
  auto sparse_scan = GroupBy(sparse, "g", "v", kSparseGroups);

  for (const char* spec_text : {"css:16", "lcss:8", "btree:32", "ttree:16",
                                "bin", "tbin", "interp", "hash:10"}) {
    t.BuildSortIndex("g", *IndexSpec::Parse(spec_text));
    auto indexed = GroupBy(t, "g", "v", kGroups);
    ASSERT_EQ(indexed.size(), scan.size()) << spec_text;
    for (uint32_t g = 0; g < kGroups; ++g) {
      ASSERT_EQ(indexed[g].count, scan[g].count) << spec_text << " g=" << g;
      ASSERT_EQ(indexed[g].sum, scan[g].sum) << spec_text << " g=" << g;
      ASSERT_EQ(indexed[g].min, scan[g].min) << spec_text << " g=" << g;
      ASSERT_EQ(indexed[g].max, scan[g].max) << spec_text << " g=" << g;
    }
    sparse.BuildSortIndex("g", *IndexSpec::Parse(spec_text));
    auto sparse_indexed = GroupBy(sparse, "g", "v", kSparseGroups);
    for (uint32_t g = 0; g < kSparseGroups; ++g) {
      ASSERT_EQ(sparse_indexed[g].count, sparse_scan[g].count)
          << spec_text << " sparse g=" << g;
      ASSERT_EQ(sparse_indexed[g].sum, sparse_scan[g].sum)
          << spec_text << " sparse g=" << g;
      ASSERT_EQ(sparse_indexed[g].min, sparse_scan[g].min)
          << spec_text << " sparse g=" << g;
      ASSERT_EQ(sparse_indexed[g].max, sparse_scan[g].max)
          << spec_text << " sparse g=" << g;
    }
  }
}

TEST(Query, IndexedJoinExpandsDuplicatesViaRangeSpans) {
  // Zipf-skewed duplicate keys on BOTH sides: the join's §3.6 expansion
  // now consumes PositionRange spans, and heavy runs are where a
  // wrong-end span would explode or truncate the pair list. Oracle:
  // nested loop over both columns, in the same outer-major order.
  ZipfGenerator zipf(200, /*theta=*/1.05, /*seed=*/47);
  std::vector<uint32_t> outer_col(3'000), inner_col(2'000);
  for (auto& v : outer_col) v = static_cast<uint32_t>(zipf.Next());
  for (auto& v : inner_col) v = static_cast<uint32_t>(zipf.Next());
  Table outer, inner;
  outer.AddColumn("k", outer_col);
  inner.AddColumn("k", inner_col);

  std::vector<JoinedPair> expected;
  for (size_t i = 0; i < outer_col.size(); ++i) {
    // Inner matches in RID order, as the sorted RID list stores them.
    for (size_t j = 0; j < inner_col.size(); ++j) {
      if (outer_col[i] == inner_col[j]) {
        expected.push_back({static_cast<Rid>(i), static_cast<Rid>(j)});
      }
    }
  }
  for (const char* spec_text : {"css:16", "hash:8", "ttree:16"}) {
    inner.BuildSortIndex("k", *IndexSpec::Parse(spec_text));
    auto pairs = IndexedJoin(outer, "k", inner, "k");
    ASSERT_EQ(pairs.size(), expected.size()) << spec_text;
    for (size_t i = 0; i < pairs.size(); ++i) {
      ASSERT_EQ(pairs[i].outer, expected[i].outer) << spec_text << " " << i;
      ASSERT_EQ(pairs[i].inner, expected[i].inner) << spec_text << " " << i;
    }
  }
}

TEST(SortIndex, RangeBatchMatchesScalarRangeAcrossSpecs) {
  Pcg32 rng(51);
  std::vector<uint32_t> col(9'000);
  for (auto& v : col) v = rng.Below(700);
  std::vector<std::pair<uint32_t, uint32_t>> bounds;
  for (int b = 0; b < 200; ++b) {
    uint32_t lo = rng.Below(750);
    uint32_t hi = rng.Below(750);  // inverted and empty pairs included
    bounds.push_back({lo, hi});
  }
  for (const IndexSpec& spec : AllSpecs(16, 10)) {
    SortIndex index(col, spec);
    auto batched = index.RangeBatch(bounds);
    ASSERT_EQ(batched.size(), bounds.size()) << spec.ToString();
    for (size_t b = 0; b < bounds.size(); ++b) {
      ASSERT_EQ(batched[b], index.Range(bounds[b].first, bounds[b].second))
          << spec.ToString() << " b=" << b;
    }
  }
  // The no-opts overload follows the spec's "@tN" probe-thread policy,
  // with results identical to the inline default.
  SortIndex threaded(col, *IndexSpec::Parse("css:16@t3"));
  SortIndex inline_default(col, *IndexSpec::Parse("css:16"));
  ASSERT_EQ(threaded.RangeBatch(bounds), inline_default.RangeBatch(bounds));
}

TEST(SortIndex, EveryMethodInTheSuiteServesAColumn) {
  // BuildSortIndex accepts any IndexSpec, including unordered hash (whose
  // Range/LowerBound fall back to binary search on the sorted key list).
  Pcg32 rng(31);
  std::vector<uint32_t> col(8000);
  for (auto& v : col) v = rng.Below(900);
  SortIndex oracle(col);  // default spec: full CSS-tree
  for (const IndexSpec& spec : AllSpecs(16, 10)) {
    SortIndex index(col, spec);
    EXPECT_EQ(index.spec(), spec);
    for (uint32_t v : {0u, 1u, 433u, 899u, 900u, 5000u}) {
      ASSERT_EQ(index.Equal(v), oracle.Equal(v)) << spec.ToString();
      ASSERT_EQ(index.Find(v), oracle.Find(v)) << spec.ToString();
      ASSERT_EQ(index.LowerBound(v), oracle.LowerBound(v)) << spec.ToString();
    }
    ASSERT_EQ(index.Range(100, 300), oracle.Range(100, 300))
        << spec.ToString();
  }
}

TEST(Table, BuildSortIndexAcceptsSpecsAndRejectsOffMenu) {
  Table t = MakeOrders(5'000, 100, 17);
  auto baseline = SelectEqual(t, "customer", 42);  // scan path
  for (const char* spec_text : {"css:16", "lcss:8", "btree:32", "ttree:16",
                                "bin", "tbin", "interp", "hash:10"}) {
    auto spec = IndexSpec::Parse(spec_text);
    ASSERT_TRUE(spec.has_value()) << spec_text;
    t.BuildSortIndex("customer", *spec);
    EXPECT_EQ(SelectEqual(t, "customer", 42), baseline) << spec_text;
  }
  EXPECT_THROW(t.BuildSortIndex("customer", IndexSpec().WithNodeEntries(12)),
               std::invalid_argument);
  // The failed rebuild must not have clobbered the existing index.
  EXPECT_TRUE(t.HasSortIndex("customer"));
  EXPECT_EQ(SelectEqual(t, "customer", 42), baseline);
}

TEST(Table, AppendRowsRebuildsWithOriginalSpec) {
  Table t;
  t.AddColumn("k", {10, 20, 30});
  t.BuildSortIndex("k", *IndexSpec::Parse("hash:6"));
  t.AppendRows({{"k", {15, 25}}});
  const SortIndex& rebuilt = t.GetSortIndex("k");
  EXPECT_EQ(rebuilt.spec(), *IndexSpec::Parse("hash:6"));
  EXPECT_EQ(rebuilt.Equal(15), (std::vector<Rid>{3}));
}

TEST(Table, IncrementalAppendMatchesFreshRebuildForEverySpec) {
  // ApplyAppend merges the appended (value, RID) pairs instead of
  // re-sorting the column; the result — keys, RID permutation, and every
  // query — must be bit-identical to a from-scratch SortIndex over the
  // extended column. Duplicates across the append boundary are the
  // tie-breaking hazard: equal values must stay in RID order.
  Pcg32 rng(0xa99e4d);
  for (const char* spec_text :
       {"css:16", "part:4/css:16", "part:16/css:16", "hash:8", "ttree:16"}) {
    Table t;
    std::vector<uint32_t> col(9'000);
    for (auto& v : col) v = rng.Below(700);  // dense duplicates
    t.AddColumn("k", col);
    t.BuildSortIndex("k", *IndexSpec::Parse(spec_text));
    for (int round = 0; round < 3; ++round) {
      std::vector<uint32_t> fresh_rows(1'500);
      for (auto& v : fresh_rows) v = rng.Below(700);
      t.AppendRows({{"k", fresh_rows}});
    }
    const SortIndex& incremental = t.GetSortIndex("k");
    SortIndex scratch(t.Column("k"), *IndexSpec::Parse(spec_text));
    ASSERT_EQ(incremental.sorted_keys(), scratch.sorted_keys()) << spec_text;
    ASSERT_EQ(incremental.rids(), scratch.rids()) << spec_text;
    for (uint32_t v : {0u, 350u, 699u, 700u}) {
      ASSERT_EQ(incremental.Equal(v), scratch.Equal(v)) << spec_text;
    }
    ASSERT_EQ(incremental.Range(100, 140), scratch.Range(100, 140))
        << spec_text;
    // Partitioned specs must have refreshed shard-incrementally, not by
    // re-sorting: every append is a batch through MaintainedIndex.
    const auto& stats = incremental.maintained().stats();
    EXPECT_EQ(stats.batches, 3u) << spec_text;
    if (incremental.spec().partitioned()) {
      EXPECT_GE(stats.incremental_refreshes + stats.full_rebuilds, 1u)
          << spec_text;
    }
  }
}

TEST(Query, OperatorsSeeFreshSnapshotsAfterAppend) {
  // SelectRange/GroupBy/IndexedJoin keep running against the refreshed
  // index after a batch append, with the same answers a fully rebuilt
  // table gives.
  Table t = MakeOrders(20'000, 300, 27);
  t.BuildSortIndex("customer", *IndexSpec::Parse("part:8/css:16"));
  t.BuildSortIndex("day", *IndexSpec::Parse("css:16"));
  Pcg32 rng(0x77);
  std::map<std::string, std::vector<uint32_t>> batch;
  for (const char* col : {"customer", "amount", "day"}) {
    std::vector<uint32_t> values(2'000);
    for (auto& v : values) {
      v = col == std::string("amount") ? 1 + rng.Below(1000)
          : col == std::string("day")  ? rng.Below(365)
                                       : rng.Below(300);
    }
    batch[col] = std::move(values);
  }
  t.AppendRows(batch);

  Table fresh = [&] {
    Table copy;
    for (const char* col : {"customer", "amount", "day"}) {
      copy.AddColumn(col, t.Column(col));
    }
    copy.BuildSortIndex("customer", *IndexSpec::Parse("part:8/css:16"));
    copy.BuildSortIndex("day", *IndexSpec::Parse("css:16"));
    return copy;
  }();

  EXPECT_EQ(SelectRange(t, "day", 50, 120), SelectRange(fresh, "day", 50, 120));
  auto grouped = GroupBy(t, "customer", "amount", 300);
  auto grouped_fresh = GroupBy(fresh, "customer", "amount", 300);
  ASSERT_EQ(grouped.size(), grouped_fresh.size());
  for (size_t g = 0; g < grouped.size(); ++g) {
    ASSERT_EQ(grouped[g].count, grouped_fresh[g].count) << g;
    ASSERT_EQ(grouped[g].sum, grouped_fresh[g].sum) << g;
  }

  Table dims;
  dims.AddColumn("id", [&] {
    std::vector<uint32_t> ids(300);
    std::iota(ids.begin(), ids.end(), 0u);
    return ids;
  }());
  auto check_join = [&](const Table& inner) {
    return IndexedJoin(dims, "id", inner, "customer");
  };
  auto joined = check_join(t);
  auto joined_fresh = check_join(fresh);
  ASSERT_EQ(joined.size(), joined_fresh.size());
  for (size_t i = 0; i < joined.size(); ++i) {
    ASSERT_EQ(joined[i].outer, joined_fresh[i].outer) << i;
    ASSERT_EQ(joined[i].inner, joined_fresh[i].inner) << i;
  }
}

TEST(Query, IndexedJoinThroughEveryMethod) {
  // The join probes the inner index through FindBatch; every method must
  // produce the same pairs, hash included.
  Table orders = MakeOrders(7'000, 150, 19);
  Table customers;
  {
    std::vector<uint32_t> id(150), region(150);
    Pcg32 rng(29);
    for (uint32_t i = 0; i < 150; ++i) {
      id[i] = i;
      region[i] = rng.Below(10);
    }
    customers.AddColumn("id", std::move(id));
    customers.AddColumn("region", std::move(region));
  }
  customers.BuildSortIndex("id");
  auto expected = IndexedJoin(orders, "customer", customers, "id");
  ASSERT_EQ(expected.size(), 7'000u);
  for (const IndexSpec& spec : AllSpecs(8, 8)) {
    customers.BuildSortIndex("id", spec);
    auto pairs = IndexedJoin(orders, "customer", customers, "id");
    ASSERT_EQ(pairs.size(), expected.size()) << spec.ToString();
    for (size_t i = 0; i < pairs.size(); ++i) {
      ASSERT_EQ(pairs[i].outer, expected[i].outer) << spec.ToString();
      ASSERT_EQ(pairs[i].inner, expected[i].inner) << spec.ToString();
    }
  }
}

TEST(Query, PartitionedSortIndexIsBitIdenticalToUnpartitioned) {
  // The engine runs on partitioned specs unchanged: a sort index built
  // with "part:K/<inner>" must drive SelectRange, SelectRangeBatch,
  // GroupBy, and IndexedJoin to exactly the results of the bare inner
  // spec — RID order included — over a Zipf-skewed duplicates table,
  // where a shard fence through the middle of a hot run would show up
  // immediately as a truncated run span.
  constexpr uint32_t kGroups = 48;
  ZipfGenerator zipf(kGroups - 1, /*theta=*/1.1, /*seed=*/53);
  Pcg32 rng(57);
  std::vector<uint32_t> group(40'000), value(40'000);
  for (size_t i = 0; i < group.size(); ++i) {
    group[i] = static_cast<uint32_t>(zipf.Next());
    value[i] = 1 + rng.Below(10'000);
  }
  Table t;
  t.AddColumn("g", std::move(group));
  t.AddColumn("v", std::move(value));

  Table outer;
  {
    ZipfGenerator outer_zipf(kGroups - 1, /*theta=*/0.9, /*seed=*/59);
    std::vector<uint32_t> outer_col(9'000);
    for (auto& v : outer_col) v = static_cast<uint32_t>(outer_zipf.Next());
    outer.AddColumn("g", std::move(outer_col));
  }

  std::vector<std::pair<uint32_t, uint32_t>> bounds{
      {0, kGroups}, {5, 20}, {7, 7}, {30, 10}, {0, 1}, {kGroups - 1, 1000}};

  for (const char* inner_text : {"css:16", "btree:32", "hash:10"}) {
    IndexSpec inner = *IndexSpec::Parse(inner_text);
    t.BuildSortIndex("g", inner);
    auto want_range = SelectRange(t, "g", 5, 20);
    auto want_batch = SelectRangeBatch(t, "g", bounds);
    auto want_groups = GroupBy(t, "g", "v", kGroups);
    auto want_join = IndexedJoin(outer, "g", t, "g");

    for (int k : {2, 8, 64}) {
      IndexSpec part = inner.WithPartitions(k);
      t.BuildSortIndex("g", part);
      ASSERT_EQ(t.GetSortIndex("g").spec(), part);
      ASSERT_EQ(SelectRange(t, "g", 5, 20), want_range)
          << part.ToString();
      ASSERT_EQ(SelectRangeBatch(t, "g", bounds), want_batch)
          << part.ToString();
      auto groups = GroupBy(t, "g", "v", kGroups);
      ASSERT_EQ(groups.size(), want_groups.size()) << part.ToString();
      for (uint32_t g = 0; g < kGroups; ++g) {
        ASSERT_EQ(groups[g].count, want_groups[g].count)
            << part.ToString() << " g=" << g;
        ASSERT_EQ(groups[g].sum, want_groups[g].sum)
            << part.ToString() << " g=" << g;
        ASSERT_EQ(groups[g].min, want_groups[g].min)
            << part.ToString() << " g=" << g;
        ASSERT_EQ(groups[g].max, want_groups[g].max)
            << part.ToString() << " g=" << g;
      }
      auto join = IndexedJoin(outer, "g", t, "g");
      ASSERT_EQ(join.size(), want_join.size()) << part.ToString();
      for (size_t i = 0; i < join.size(); ++i) {
        ASSERT_EQ(join[i].outer, want_join[i].outer)
            << part.ToString() << " i=" << i;
        ASSERT_EQ(join[i].inner, want_join[i].inner)
            << part.ToString() << " i=" << i;
      }
    }
  }
}

TEST(Table, DeleteRowsCompactsAndRenumbers) {
  Table t;
  t.AddColumn("k", {10, 20, 30, 20, 40});
  t.AddColumn("v", {1, 2, 3, 4, 5});
  t.BuildSortIndex("k");
  t.DeleteRows(std::vector<Rid>{1, 3, 3});  // duplicates allowed
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.Column("k"), (std::vector<uint32_t>{10, 30, 40}));
  EXPECT_EQ(t.Column("v"), (std::vector<uint32_t>{1, 3, 5}));
  // Survivors renumbered: old RIDs 0, 2, 4 -> 0, 1, 2.
  EXPECT_EQ(t.GetSortIndex("k").Equal(30), (std::vector<Rid>{1}));
  EXPECT_TRUE(t.GetSortIndex("k").Equal(20).empty());
  // Validation: out-of-range throws, empty list is a no-op.
  EXPECT_THROW(t.DeleteRows(std::vector<Rid>{3}), std::out_of_range);
  t.DeleteRows(std::vector<Rid>{});
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST(Table, DeleteInterleavedWithAppendMatchesFreshRebuildForEverySpec) {
  // The engine-delete differential: append/delete interleavings routed
  // through the maintenance chain must leave every sort index — keys,
  // RID permutation, maintenance counters' batch count — bit-identical
  // to a from-scratch SortIndex over the surviving column. TWO indexed
  // columns, so deletes positional in one column land mid-run in the
  // other, exercising the partial-run reinsert path; dense duplicates
  // make most runs multi-row.
  for (const IndexSpec& spec : test_menu::DefaultSpecs(16, 10)) {
    Pcg32 rng(0xde1e7e);
    Table t;
    std::vector<uint32_t> k(6'000), g(6'000);
    for (auto& v : k) v = rng.Below(500);
    for (auto& v : g) v = rng.Below(40);
    t.AddColumn("k", k);
    t.AddColumn("g", g);
    t.BuildSortIndex("k", spec);
    t.BuildSortIndex("g", spec);
    for (int round = 0; round < 3; ++round) {
      // Delete a random ~10% slice of the current rows...
      std::vector<Rid> doomed;
      for (Rid r = 0; r < t.NumRows(); ++r) {
        if (rng.Below(10) == 0) doomed.push_back(r);
      }
      t.DeleteRows(doomed);
      // ...then append fresh rows across the same key ranges.
      std::vector<uint32_t> fresh_k(800), fresh_g(800);
      for (auto& v : fresh_k) v = rng.Below(500);
      for (auto& v : fresh_g) v = rng.Below(40);
      t.AppendRows({{"k", fresh_k}, {"g", fresh_g}});
    }
    for (const char* col : {"k", "g"}) {
      const SortIndex& incremental = t.GetSortIndex(col);
      SortIndex scratch(t.Column(col), spec);
      ASSERT_EQ(incremental.sorted_keys(), scratch.sorted_keys())
          << spec.ToString() << " " << col;
      ASSERT_EQ(incremental.rids(), scratch.rids())
          << spec.ToString() << " " << col;
      // One maintenance batch per DeleteRows + one per AppendRows.
      EXPECT_EQ(incremental.maintained().stats().batches, 6u)
          << spec.ToString() << " " << col;
    }
  }
}

TEST(Table, ApplyUpdateIsOneMaintenanceBatch) {
  // DELETE + INSERT fused: every row with a doomed key goes, the new
  // rows land — including rows re-using a just-deleted key, which must
  // survive (deletes before inserts, as in workload::ApplySortedBatch)
  // — and each index pays ONE maintenance batch for the whole change.
  Table t;
  t.AddColumn("k", {10, 20, 30, 20, 40});
  t.AddColumn("v", {1, 2, 3, 4, 5});
  t.BuildSortIndex("k", *IndexSpec::Parse("part:2/css:16"));
  const size_t batches_before = t.GetSortIndex("k").maintained().stats().batches;
  t.ApplyUpdate("k", {20, 40}, {{"k", {20, 50}}, {"v", {6, 7}}});
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.Column("k"), (std::vector<uint32_t>{10, 30, 20, 50}));
  EXPECT_EQ(t.Column("v"), (std::vector<uint32_t>{1, 3, 6, 7}));
  EXPECT_EQ(t.GetSortIndex("k").Equal(20), (std::vector<Rid>{2}));
  EXPECT_EQ(t.GetSortIndex("k").maintained().stats().batches,
            batches_before + 1);
  // Deletes-only form, and a key that matches nothing is a no-op.
  t.ApplyUpdate("k", {10});
  EXPECT_EQ(t.NumRows(), 3u);
  t.ApplyUpdate("k", {999});
  EXPECT_EQ(t.NumRows(), 3u);
  // Differential against a fresh rebuild of the surviving column.
  SortIndex scratch(t.Column("k"), *IndexSpec::Parse("part:2/css:16"));
  EXPECT_EQ(t.GetSortIndex("k").sorted_keys(), scratch.sorted_keys());
  EXPECT_EQ(t.GetSortIndex("k").rids(), scratch.rids());
}

TEST(Table, DeleteEverythingThenAppendFromEmpty) {
  Table t;
  t.AddColumn("k", {5, 5, 7});
  t.BuildSortIndex("k", *IndexSpec::Parse("css:16"));
  std::vector<Rid> all{0, 1, 2};
  t.DeleteRows(all);
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_TRUE(t.GetSortIndex("k").sorted_keys().empty());
  EXPECT_TRUE(SelectRange(t, "k", 0, 0xffffffffu).empty());
  t.AppendRows({{"k", {9, 3, 9}}});
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.GetSortIndex("k").Equal(9), (std::vector<Rid>{0, 2}));
  EXPECT_EQ(SelectRange(t, "k", 0, 10), (std::vector<Rid>{1, 0, 2}));
}

TEST(Query, OperatorsCorrectAfterDeletes) {
  // SelectRange/GroupBy/IndexedJoin against a delete-heavy table must
  // equal a table rebuilt from scratch over the surviving rows.
  Table t = MakeOrders(20'000, 300, 61);
  t.BuildSortIndex("customer", *IndexSpec::Parse("part:8/css:16"));
  t.BuildSortIndex("day", *IndexSpec::Parse("css:16"));
  Pcg32 rng(0x63);
  std::vector<Rid> doomed;
  for (Rid r = 0; r < t.NumRows(); ++r) {
    if (rng.Below(4) == 0) doomed.push_back(r);
  }
  t.DeleteRows(doomed);

  Table fresh;
  for (const char* col : {"customer", "amount", "day"}) {
    fresh.AddColumn(col, t.Column(col));
  }
  fresh.BuildSortIndex("customer", *IndexSpec::Parse("part:8/css:16"));
  fresh.BuildSortIndex("day", *IndexSpec::Parse("css:16"));

  EXPECT_EQ(SelectRange(t, "day", 50, 120), SelectRange(fresh, "day", 50, 120));
  auto grouped = GroupBy(t, "customer", "amount", 300);
  auto grouped_fresh = GroupBy(fresh, "customer", "amount", 300);
  ASSERT_EQ(grouped.size(), grouped_fresh.size());
  for (size_t g = 0; g < grouped.size(); ++g) {
    ASSERT_EQ(grouped[g].count, grouped_fresh[g].count) << g;
    ASSERT_EQ(grouped[g].sum, grouped_fresh[g].sum) << g;
  }
  Table dims;
  dims.AddColumn("id", [&] {
    std::vector<uint32_t> ids(300);
    std::iota(ids.begin(), ids.end(), 0u);
    return ids;
  }());
  auto joined = IndexedJoin(dims, "id", t, "customer");
  auto joined_fresh = IndexedJoin(dims, "id", fresh, "customer");
  ASSERT_EQ(joined.size(), joined_fresh.size());
  for (size_t i = 0; i < joined.size(); ++i) {
    ASSERT_EQ(joined[i].outer, joined_fresh[i].outer) << i;
    ASSERT_EQ(joined[i].inner, joined_fresh[i].inner) << i;
  }
}

TEST(Query, CountEqualAndCountRangeMatchSelectSizes) {
  Table t = MakeOrders(15'000, 200, 67);
  // Scan path first, then indexed (ordered and hash).
  for (const char* spec_text : {"", "css:16", "hash:10", "part:4/btree:32"}) {
    if (*spec_text != '\0') {
      t.BuildSortIndex("day", *IndexSpec::Parse(spec_text));
    }
    for (uint32_t v : {0u, 100u, 364u, 365u, 9999u}) {
      ASSERT_EQ(CountEqual(t, "day", v), SelectEqual(t, "day", v).size())
          << spec_text << " v=" << v;
    }
    for (auto [lo, hi] : std::initializer_list<std::pair<uint32_t, uint32_t>>{
             {100, 200}, {0, 365}, {7, 7}, {200, 100}, {0, 0xffffffffu}}) {
      ASSERT_EQ(CountRange(t, "day", lo, hi),
                SelectRange(t, "day", lo, hi).size())
          << spec_text << " [" << lo << ", " << hi << ")";
    }
  }
}

TEST(Query, DecisionSupportPipeline) {
  // The paper's motivating workload end to end: restrict orders to a day
  // range, join to customers, aggregate revenue per region.
  Table orders = MakeOrders(30'000, 300, 21);
  orders.BuildSortIndex("day");
  Table customers;
  {
    std::vector<uint32_t> id(300), region(300);
    Pcg32 rng(23);
    for (uint32_t i = 0; i < 300; ++i) {
      id[i] = i;
      region[i] = rng.Below(5);
    }
    customers.AddColumn("id", std::move(id));
    customers.AddColumn("region", std::move(region));
  }
  customers.BuildSortIndex("id");

  auto in_window = SelectRange(orders, "day", 50, 150);
  EXPECT_GT(in_window.size(), 5'000u);

  // Restrict + join + group: revenue per region for the window.
  std::vector<uint64_t> revenue(5, 0);
  const auto& amount = orders.Column("amount");
  const auto& customer = orders.Column("customer");
  const auto& region = customers.Column("region");
  const SortIndex& cidx = customers.GetSortIndex("id");
  uint64_t total = 0;
  for (Rid r : in_window) {
    auto matches = cidx.Equal(customer[r]);
    ASSERT_EQ(matches.size(), 1u);
    revenue[region[matches[0]]] += amount[r];
    total += amount[r];
  }
  uint64_t sum_check = 0;
  for (uint64_t v : revenue) sum_check += v;
  EXPECT_EQ(sum_check, total);
  EXPECT_GT(total, 0u);
}

// ------------------------------------------------------ string columns

std::vector<std::string> RandomWords(size_t rows,
                                     std::span<const char* const> vocab,
                                     uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::string> out(rows);
  for (auto& w : out) w = vocab[rng.Below(static_cast<uint32_t>(vocab.size()))];
  return out;
}

TEST(Table, StringColumnIsAnIdColumnWithAnOrderPreservingDictionary) {
  Table t;
  t.AddStringColumn("city", {"oslo", "bergen", "oslo", "tromso", "bergen"});
  t.AddColumn("pop", {7, 3, 7, 1, 3});
  ASSERT_TRUE(t.HasStringColumn("city"));
  EXPECT_FALSE(t.HasStringColumn("pop"));
  EXPECT_THROW(t.StringDomainOf("pop"), std::out_of_range);

  // The stored column is dictionary IDs, and because the dictionary is
  // sorted, comparing IDs IS comparing values (§2.1).
  const domain::StringDomain& dom = t.StringDomainOf("city");
  ASSERT_EQ(dom.size(), 3u);  // bergen oslo tromso
  EXPECT_EQ(t.Column("city"),
            (std::vector<uint32_t>{1, 0, 1, 2, 0}));
  for (size_t i = 0; i + 1 < dom.size(); ++i) {
    EXPECT_LT(dom.Decode(static_cast<uint32_t>(i)),
              dom.Decode(static_cast<uint32_t>(i + 1)));
  }
  // Decode-on-output: a query result's rows map back to values.
  std::vector<Rid> oslo = SelectEqual(t, "city", std::string("oslo"));
  EXPECT_EQ(oslo, (std::vector<Rid>{0, 2}));
  for (Rid r : oslo) {
    EXPECT_EQ(dom.Decode(t.Column("city")[r]), "oslo");
  }
}

TEST(Query, StringPredicatesMatchScanOracleWithAndWithoutIndex) {
  constexpr const char* kVocab[] = {"ash",   "birch", "cedar", "elm",
                                    "fir",   "hazel", "oak",   "pine",
                                    "rowan", "yew"};
  const std::vector<std::string> words = RandomWords(800, kVocab, 0x57f);
  // Probe values include strings outside the vocabulary; range bounds
  // include prefixes that fall between dictionary entries.
  const std::vector<std::string> probes = {"cedar", "oak", "maple", ""};
  const std::vector<std::pair<std::string, std::string>> ranges = {
      {"birch", "oak"}, {"a", "z"}, {"f", "fz"}, {"oak", "oak"},
      {"pine", "elm"}};

  for (bool indexed : {false, true}) {
    SCOPED_TRACE(indexed ? "indexed" : "scan");
    Table t;
    t.AddStringColumn("tree", words);
    if (indexed) t.BuildSortIndex("tree", *IndexSpec::Parse("css:16"));
    for (const std::string& p : probes) {
      std::vector<Rid> expected;
      for (size_t i = 0; i < words.size(); ++i) {
        if (words[i] == p) expected.push_back(static_cast<Rid>(i));
      }
      std::vector<Rid> got = SelectEqual(t, "tree", p);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "value " << p;
      EXPECT_EQ(CountEqual(t, "tree", p), expected.size());
    }
    for (const auto& [lo, hi] : ranges) {
      std::vector<Rid> expected;
      for (size_t i = 0; i < words.size(); ++i) {
        if (words[i] >= lo && words[i] < hi) {
          expected.push_back(static_cast<Rid>(i));
        }
      }
      std::vector<Rid> got = SelectRange(t, "tree", lo, hi);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "range [" << lo << ", " << hi << ")";
      EXPECT_EQ(CountRange(t, "tree", lo, hi), expected.size());
    }
  }
}

TEST(Query, IndexedJoinOnStringColumnsJoinsOnValuesNotIds) {
  // The two dictionaries deliberately disagree: "cedar" is ID 1 on one
  // side and ID 0 on the other, and each side holds values the other
  // never saw — a raw ID join would be silently wrong everywhere.
  constexpr const char* kOuterVocab[] = {"ash", "cedar", "oak", "maple"};
  constexpr const char* kInnerVocab[] = {"cedar", "oak", "pine", "yew"};
  const std::vector<std::string> outer_words =
      RandomWords(300, kOuterVocab, 0x0117);
  const std::vector<std::string> inner_words =
      RandomWords(450, kInnerVocab, 0x0118);
  Table outer, inner;
  outer.AddStringColumn("tree", outer_words);
  inner.AddStringColumn("tree", inner_words);
  inner.BuildSortIndex("tree", *IndexSpec::Parse("part:4/css:16"));

  std::vector<JoinedPair> got = IndexedJoin(outer, "tree", inner, "tree");
  std::vector<std::pair<Rid, Rid>> got_pairs, expected;
  for (const JoinedPair& p : got) got_pairs.push_back({p.outer, p.inner});
  for (size_t o = 0; o < outer_words.size(); ++o) {
    for (size_t i = 0; i < inner_words.size(); ++i) {
      if (outer_words[o] == inner_words[i]) {
        expected.push_back(
            {static_cast<Rid>(o), static_cast<Rid>(i)});
      }
    }
  }
  std::sort(got_pairs.begin(), got_pairs.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got_pairs, expected);
  ASSERT_FALSE(expected.empty());  // the overlap actually exercised it

  // String vs integer is a type error, not an ID coincidence.
  Table nums;
  nums.AddColumn("tree", {0, 1, 2});
  nums.BuildSortIndex("tree");
  EXPECT_THROW(IndexedJoin(outer, "tree", nums, "tree"),
               std::invalid_argument);
}

TEST(Query, GroupByOnAStringColumnAggregatesPerDictionaryId) {
  // GROUP BY wants dense domain IDs — which is exactly what a string
  // column stores, so grouping by it needs no special path; the
  // dictionary just labels the groups.
  Table t;
  t.AddStringColumn("fruit",
                    {"pear", "apple", "pear", "quince", "apple", "pear"});
  t.AddColumn("kg", {2, 10, 3, 7, 20, 5});
  t.BuildSortIndex("fruit");
  const domain::StringDomain& dom = t.StringDomainOf("fruit");
  std::vector<Aggregates> groups =
      GroupBy(t, "fruit", "kg", static_cast<uint32_t>(dom.size()));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(dom.Decode(0), "apple");
  EXPECT_EQ(groups[0].count, 2u);
  EXPECT_EQ(groups[0].sum, 30u);
  EXPECT_EQ(dom.Decode(1), "pear");
  EXPECT_EQ(groups[1].count, 3u);
  EXPECT_EQ(groups[1].sum, 10u);
  EXPECT_EQ(dom.Decode(2), "quince");
  EXPECT_EQ(groups[2].count, 1u);
  EXPECT_EQ(groups[2].sum, 7u);
}

// Regression: AppendRows({}) on a zero-column table used to dereference
// rows.begin() on an empty map (UB). Both mutators that take a row batch
// must treat the empty-batch/zero-column case as a no-op.
TEST(Table, EmptyBatchOnZeroColumnTableIsANoOp) {
  Table t;
  t.AppendRows({});
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.NumColumns(), 0u);

  // ApplyUpdate's insert half goes through the same validation; an empty
  // insert map (deletes only, none matching) must also be a no-op.
  Table u = MakeOrders(50, 10, 21);
  u.BuildSortIndex("customer");
  u.ApplyUpdate("customer", {1000, 2000}, {});
  EXPECT_EQ(u.NumRows(), 50u);

  // A zero-row batch with the right columns is equally harmless.
  u.AppendRows({{"customer", {}}, {"amount", {}}, {"day", {}}});
  EXPECT_EQ(u.NumRows(), 50u);
}

// Regression: raw uint32 values inserted into a string (domain-ID) column
// were not checked against the dictionary, silently desyncing the column
// from its domain. Invalid IDs must throw — naming the column — and leave
// the table untouched.
TEST(Table, InsertedStringIdsAreValidatedAgainstTheDictionary) {
  Table t;
  t.AddStringColumn("fruit", {"apple", "pear", "quince"});
  t.AddColumn("kg", {1, 2, 3});
  t.BuildSortIndex("fruit");
  const size_t dict = t.StringDomainOf("fruit").size();  // 3: ids 0..2

  // AppendRows with an out-of-dictionary ID: throws, nothing changes.
  try {
    t.AppendRows({{"fruit", {1, static_cast<uint32_t>(dict)}},
                  {"kg", {4, 5}}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fruit"), std::string::npos);
  }
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.Column("fruit"), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(t.GetSortIndex("fruit").sorted_keys().size(), 3u);

  // ApplyUpdate's insert half is validated the same way, BEFORE any
  // deletes are applied.
  EXPECT_THROW(t.ApplyUpdate("fruit", {0}, {{"fruit", {99}}, {"kg", {6}}}),
               std::invalid_argument);
  EXPECT_EQ(t.NumRows(), 3u);

  // Valid IDs still append (and decode) fine.
  t.AppendRows({{"fruit", {2, 0}}, {"kg", {4, 5}}});
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.StringDomainOf("fruit").Decode(t.Column("fruit")[3]), "quince");
}

// Regression: SpaceBytes() reported vector capacity(), overstating the
// index's size whenever the key/RID lists carry allocator slack — e.g.
// lists grown by push_back in the external merge and moved in via
// FromSorted. Contents and reservation are now separate quantities.
TEST(SortIndex, SpaceBytesReportsContentsNotCapacity) {
  Pcg32 rng(22);
  std::vector<uint32_t> col(1000);
  for (auto& v : col) v = rng.Below(500);
  const SortIndex fresh(col);

  // The same sorted lists, but with deliberate capacity slack.
  std::vector<uint32_t> keys(fresh.sorted_keys());
  std::vector<Rid> rids(fresh.rids());
  keys.reserve(4096);
  rids.reserve(4096);
  const SortIndex slack =
      SortIndex::FromSorted(std::move(keys), std::move(rids));

  EXPECT_EQ(slack.SpaceBytes(), fresh.SpaceBytes());
  EXPECT_GT(slack.ReservedBytes(), slack.SpaceBytes());
  EXPECT_GE(fresh.ReservedBytes(), fresh.SpaceBytes());

  // FromSorted sanity: mismatched list lengths are a caller bug.
  EXPECT_THROW(SortIndex::FromSorted({1, 2, 3}, {0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cssidx::engine
