// IndexSpec string grammar: round-tripping, aliases, defaults, and
// rejection of everything off the menu.

#include "core/index_spec.h"

#include "gtest/gtest.h"
#include "util/bits.h"

namespace cssidx {
namespace {

TEST(IndexSpec, CanonicalStringsRoundTrip) {
  // Every buildable configuration: ToString -> Parse -> identical spec.
  std::vector<IndexSpec> menu;
  for (const IndexSpec& spec : AllSpecs()) {
    if (!spec.sized()) {
      menu.push_back(spec);
      continue;
    }
    for (int m : NodeSizeMenu()) {
      IndexSpec sized = spec.WithNodeEntries(m);
      if (sized.OnMenu()) menu.push_back(sized);
    }
  }
  for (int bits : {0, 3, 8, 17, 28}) {
    auto hash = IndexSpec::Parse("hash:" + std::to_string(bits));
    ASSERT_TRUE(hash.has_value()) << bits;
    menu.push_back(*hash);
  }
  ASSERT_GT(menu.size(), 20u);
  for (const IndexSpec& spec : menu) {
    auto reparsed = IndexSpec::Parse(spec.ToString());
    ASSERT_TRUE(reparsed.has_value()) << spec.ToString();
    EXPECT_EQ(*reparsed, spec) << spec.ToString();
    EXPECT_EQ(reparsed->ToString(), spec.ToString());
  }
}

TEST(IndexSpec, ParseExamplesFromTheGrammar) {
  EXPECT_EQ(IndexSpec::Parse("css:16")->DisplayName(), "full CSS-tree/m=16");
  EXPECT_EQ(IndexSpec::Parse("lcss:64")->node_entries(), 64);
  EXPECT_EQ(IndexSpec::Parse("hash:22")->hash_dir_bits(), 22);
  EXPECT_EQ(IndexSpec::Parse("btree:32")->DisplayName(), "B+-tree/m=32");
  EXPECT_EQ(IndexSpec::Parse("bin")->DisplayName(), "array binary search");
  EXPECT_EQ(IndexSpec::Parse("tbin")->DisplayName(), "tree binary search");
  EXPECT_EQ(IndexSpec::Parse("interp")->DisplayName(),
            "interpolation search");
  EXPECT_FALSE(IndexSpec::Parse("hash:22")->ordered());
  EXPECT_TRUE(IndexSpec::Parse("css:16")->ordered());
}

TEST(IndexSpec, ParamDefaultsWhenOmitted) {
  EXPECT_EQ(IndexSpec::Parse("css")->node_entries(), 16);
  EXPECT_EQ(IndexSpec::Parse("ttree")->node_entries(), 16);
  EXPECT_EQ(IndexSpec::Parse("hash")->hash_dir_bits(), 22);
}

TEST(IndexSpec, AcceptsLongFormAliases) {
  EXPECT_EQ(*IndexSpec::Parse("binary"), *IndexSpec::Parse("bin"));
  EXPECT_EQ(*IndexSpec::Parse("interpolation"), *IndexSpec::Parse("interp"));
  EXPECT_EQ(*IndexSpec::Parse("full-css:32"), *IndexSpec::Parse("css:32"));
  EXPECT_EQ(*IndexSpec::Parse("level-css:8"), *IndexSpec::Parse("lcss:8"));
  EXPECT_EQ(*IndexSpec::Parse("b+tree:16"), *IndexSpec::Parse("btree:16"));
  EXPECT_EQ(*IndexSpec::Parse("t-tree:4"), *IndexSpec::Parse("ttree:4"));
}

TEST(IndexSpec, RejectsOffMenu) {
  // Unknown methods.
  EXPECT_FALSE(IndexSpec::Parse("").has_value());
  EXPECT_FALSE(IndexSpec::Parse(":").has_value());
  EXPECT_FALSE(IndexSpec::Parse("bogus").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css tree").has_value());
  // Malformed params.
  EXPECT_FALSE(IndexSpec::Parse("css:").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:abc").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16x").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:-16").has_value());
  // Off-menu node sizes.
  EXPECT_FALSE(IndexSpec::Parse("css:12").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:0").has_value());
  EXPECT_FALSE(IndexSpec::Parse("ttree:1000").has_value());
  // Level CSS-trees: powers of two only.
  EXPECT_FALSE(IndexSpec::Parse("lcss:24").has_value());
  EXPECT_TRUE(IndexSpec::Parse("lcss:32").has_value());
  // Params on unsized methods are an error, not ignored.
  EXPECT_FALSE(IndexSpec::Parse("bin:4").has_value());
  EXPECT_FALSE(IndexSpec::Parse("interp:8").has_value());
  // Hash directory out of range.
  EXPECT_FALSE(IndexSpec::Parse("hash:40").has_value());
  EXPECT_FALSE(IndexSpec::Parse("hash:-1").has_value());
}

TEST(IndexSpec, ThreadSuffixParsesAndRoundTrips) {
  auto spec = IndexSpec::Parse("css:16@t8");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->probe_threads(), 8);
  EXPECT_EQ(spec->node_entries(), 16);
  EXPECT_EQ(spec->ToString(), "css:16@t8");
  EXPECT_EQ(spec->DisplayName(), "full CSS-tree/m=16/threads=8");

  // Suffix composes with defaulted params and with hash.
  EXPECT_EQ(IndexSpec::Parse("css@t4")->node_entries(), 16);
  EXPECT_EQ(IndexSpec::Parse("css@t4")->probe_threads(), 4);
  EXPECT_EQ(IndexSpec::Parse("hash:22@t2")->probe_threads(), 2);
  EXPECT_EQ(IndexSpec::Parse("bin@t16")->probe_threads(), 16);

  // t0 = auto (one executor per hardware thread).
  auto auto_spec = IndexSpec::Parse("lcss:64@t0");
  ASSERT_TRUE(auto_spec.has_value());
  EXPECT_EQ(auto_spec->probe_threads(), 0);
  EXPECT_EQ(auto_spec->ToString(), "lcss:64@t0");
  EXPECT_EQ(auto_spec->DisplayName(), "level CSS-tree/m=64/threads=auto");

  // @t1 is the default and canonicalizes away.
  EXPECT_EQ(IndexSpec::Parse("css:16@t1")->ToString(), "css:16");
}

TEST(IndexSpec, ThreadSuffixIsExecutionPolicyNotStructure) {
  IndexSpec base = *IndexSpec::Parse("css:16");
  IndexSpec threaded = *IndexSpec::Parse("css:16@t8");
  EXPECT_NE(base, threaded);  // round-trip fidelity requires inequality
  EXPECT_EQ(base.WithProbeThreads(8), threaded);
  EXPECT_EQ(threaded.WithProbeThreads(1), base);
  EXPECT_EQ(base.probe_threads(), 1);
  // The structure knobs are untouched by the suffix.
  EXPECT_EQ(base.method(), threaded.method());
  EXPECT_EQ(base.node_entries(), threaded.node_entries());
  EXPECT_TRUE(threaded.OnMenu());
}

TEST(IndexSpec, RejectsMalformedThreadSuffix) {
  EXPECT_FALSE(IndexSpec::Parse("css:16@").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16@t").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16@x4").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16@tabc").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16@t4x").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16@t-1").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16@t999").has_value());  // > 256
  EXPECT_FALSE(IndexSpec::Parse("@t4").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16@t4@t4").has_value());
}

TEST(IndexSpec, PartitionPrefixParsesAndRoundTrips) {
  auto spec = IndexSpec::Parse("part:8/css:16");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->partitions(), 8);
  EXPECT_TRUE(spec->partitioned());
  EXPECT_EQ(spec->method(), Method::kFullCss);
  EXPECT_EQ(spec->node_entries(), 16);
  EXPECT_EQ(spec->ToString(), "part:8/css:16");
  EXPECT_EQ(spec->DisplayName(), "full CSS-tree/m=16/parts=8");

  // Composes with the thread suffix and with every method family.
  auto threaded = IndexSpec::Parse("part:8/css:16@t4");
  ASSERT_TRUE(threaded.has_value());
  EXPECT_EQ(threaded->partitions(), 8);
  EXPECT_EQ(threaded->probe_threads(), 4);
  EXPECT_EQ(threaded->ToString(), "part:8/css:16@t4");
  EXPECT_EQ(IndexSpec::Parse("part:2/hash:10")->partitions(), 2);
  EXPECT_EQ(IndexSpec::Parse("part:16/bin")->partitions(), 16);
  EXPECT_EQ(IndexSpec::Parse("part:4/lcss:64")->node_entries(), 64);
  // Long-form inner aliases still work under the prefix.
  EXPECT_EQ(*IndexSpec::Parse("part:4/full-css:32"),
            *IndexSpec::Parse("part:4/css:32"));
  // part:1 is a degenerate but valid single shard.
  EXPECT_TRUE(IndexSpec::Parse("part:1/css:16").has_value());

  // Round-trip fidelity across the partitioned menu.
  for (const char* text : {"part:2/css:16", "part:8/ttree:4@t2",
                           "part:256/hash:22", "part:3/tbin"}) {
    auto parsed = IndexSpec::Parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->ToString(), text);
    EXPECT_EQ(*IndexSpec::Parse(parsed->ToString()), *parsed) << text;
  }
}

TEST(IndexSpec, PartitionsAreAStructureKnob) {
  IndexSpec bare = *IndexSpec::Parse("css:16");
  IndexSpec part = *IndexSpec::Parse("part:8/css:16");
  EXPECT_NE(bare, part);  // unlike @t1, part:K changes what gets built
  EXPECT_EQ(bare.WithPartitions(8), part);
  EXPECT_EQ(part.WithPartitions(0), bare);
  EXPECT_NE(*IndexSpec::Parse("part:4/css:16"), part);  // K matters
  EXPECT_EQ(bare.partitions(), 0);
  EXPECT_FALSE(bare.partitioned());
  // Inner() strips the prefix and pins probes inline.
  IndexSpec inner = IndexSpec::Parse("part:8/css:16@t4")->Inner();
  EXPECT_EQ(inner, bare);
  EXPECT_EQ(inner.probe_threads(), 1);
  EXPECT_TRUE(part.OnMenu());
}

TEST(IndexSpec, RejectsMalformedPartitionPrefix) {
  EXPECT_FALSE(IndexSpec::Parse("part:0/css:16").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:-2/css:16").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:257/css:16").has_value());  // > 256
  EXPECT_FALSE(IndexSpec::Parse("part:abc/css:16").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8x/css:16").has_value());
  // Nested prefixes are one level only.
  EXPECT_FALSE(IndexSpec::Parse("part:2/part:4/css:16").has_value());
  // A prefix with no inner spec names nothing buildable.
  EXPECT_FALSE(IndexSpec::Parse("part:8").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8/").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:/css:16").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8/bogus").has_value());
  // Trailing garbage and misplaced separators.
  EXPECT_FALSE(IndexSpec::Parse("part:8/css:16x").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8/css:16@t4x").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8/css:16/").has_value());
  EXPECT_FALSE(IndexSpec::Parse("css:16/part:8").has_value());
  // The inner spec is still fully validated under the prefix.
  EXPECT_FALSE(IndexSpec::Parse("part:8/css:12").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8/lcss:24").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8/bin:4").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:8/hash:40").has_value());
}

TEST(IndexSpec, KeyWidthSuffixParsesAndRoundTrips) {
  // The width dimension: a trailing "64" on the method token selects
  // 8-byte keys, composing with node params, the part:K prefix, and @tN.
  auto wide = IndexSpec::Parse("css64:16");
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(wide->key_width(), 8);
  EXPECT_EQ(wide->node_entries(), 16);
  EXPECT_EQ(wide->ToString(), "css64:16");
  EXPECT_NE(wide->DisplayName().find("64-bit"), std::string::npos);

  auto composed = IndexSpec::Parse("part:4/css64:16@t2");
  ASSERT_TRUE(composed.has_value());
  EXPECT_EQ(composed->key_width(), 8);
  EXPECT_EQ(composed->partitions(), 4);
  EXPECT_EQ(composed->probe_threads(), 2);
  EXPECT_EQ(composed->ToString(), "part:4/css64:16@t2");
  // Inner() hands the shard builder the same method at the same width.
  EXPECT_EQ(composed->Inner().key_width(), 8);

  // "lcss:64" is a node param; "lcss64:64" is the width suffix plus the
  // node param — the grammar keeps them apart.
  EXPECT_EQ(IndexSpec::Parse("lcss:64")->key_width(), 4);
  EXPECT_EQ(IndexSpec::Parse("lcss64:64")->key_width(), 8);
  EXPECT_EQ(IndexSpec::Parse("lcss64:64")->node_entries(), 64);

  // Default width is 4 bytes, and width participates in equality: the
  // same tree shape over different key types is a different spec.
  EXPECT_EQ(IndexSpec().key_width(), 4);
  EXPECT_FALSE(*IndexSpec::Parse("css:16") == *IndexSpec::Parse("css64:16"));
  EXPECT_EQ(IndexSpec::Parse("css:16")->WithKeyWidth(8),
            *IndexSpec::Parse("css64:16"));

  // No 64-bit hash build; widths other than 4/8 are off the menu.
  EXPECT_FALSE(IndexSpec::Parse("hash64").has_value());
  EXPECT_FALSE(IndexSpec::Parse("hash64:10").has_value());
  EXPECT_FALSE(IndexSpec::Parse("part:4/hash64:10").has_value());
  EXPECT_FALSE(IndexSpec().WithKeyWidth(2).OnMenu());
  EXPECT_FALSE(IndexSpec(Method::kHash, 10).WithKeyWidth(8).OnMenu());

  // Every widenable spec round-trips at width 8 like the 4-byte menu.
  for (const IndexSpec& spec : AllSpecs()) {
    IndexSpec widened = spec.WithKeyWidth(8);
    if (!widened.OnMenu()) continue;
    auto reparsed = IndexSpec::Parse(widened.ToString());
    ASSERT_TRUE(reparsed.has_value()) << widened.ToString();
    EXPECT_EQ(*reparsed, widened) << widened.ToString();
  }
}

TEST(IndexSpec, OnMenuMatchesParseForConstructedSpecs) {
  for (const IndexSpec& spec : AllSpecs()) {
    if (!spec.sized()) continue;
    for (int m : {3, 4, 12, 16, 24, 48, 128, 256}) {
      IndexSpec sized = spec.WithNodeEntries(m);
      EXPECT_EQ(sized.OnMenu(),
                IndexSpec::Parse(sized.ToString()).has_value())
          << sized.ToString();
    }
  }
}

TEST(IndexSpec, AllSpecsCoversTheLegend) {
  auto specs = AllSpecs();
  ASSERT_EQ(specs.size(), 8u);
  size_t ordered = 0;
  for (const IndexSpec& spec : specs) ordered += spec.ordered() ? 1 : 0;
  EXPECT_EQ(ordered, 7u);  // all but hash
  // Knobbed variant applies to every spec.
  for (const IndexSpec& spec : AllSpecs(32, 10)) {
    if (spec.sized()) {
      EXPECT_EQ(spec.node_entries(), 32);
    }
    if (!spec.ordered()) {
      EXPECT_EQ(spec.hash_dir_bits(), 10);
    }
  }
}

}  // namespace
}  // namespace cssidx
