#include "domain/domain.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx::domain {
namespace {

TEST(IntDomain, BuildSortsAndDedups) {
  auto d = IntDomain::FromValues({5, 3, 9, 3, 5, 1});
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.values(), (std::vector<uint32_t>{1, 3, 5, 9}));
}

TEST(IntDomain, EncodeDecodeRoundTrip) {
  auto values = workload::DistinctSortedKeys(10'000, 3, 8);
  auto d = IntDomain::FromValues(values);
  for (size_t i = 0; i < values.size(); i += 53) {
    auto id = d.Encode(values[i]);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, i);
    EXPECT_EQ(d.Decode(*id), values[i]);
  }
  EXPECT_FALSE(d.Encode(values.back() + 1).has_value());
}

TEST(IntDomain, IdsAreOrderPreserving) {
  auto d = IntDomain::FromValues({100, 50, 200, 10});
  // §2.1: inequality predicates evaluate on IDs directly.
  EXPECT_LT(*d.Encode(10), *d.Encode(50));
  EXPECT_LT(*d.Encode(50), *d.Encode(100));
  EXPECT_LT(*d.Encode(100), *d.Encode(200));
}

TEST(IntDomain, EncodeColumnReportsMissing) {
  auto d = IntDomain::FromValues({10, 20, 30});
  std::vector<size_t> missing;
  auto ids = d.EncodeColumn({10, 99, 30, 77}, &missing);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[2], 2u);
  EXPECT_EQ(missing, (std::vector<size_t>{1, 3}));
}

TEST(IntDomain, LowerBoundIdForRangePredicates) {
  auto d = IntDomain::FromValues({10, 20, 30, 40});
  EXPECT_EQ(d.LowerBoundId(25), 2u);  // first value >= 25 is 30 (id 2)
  EXPECT_EQ(d.LowerBoundId(10), 0u);
  EXPECT_EQ(d.LowerBoundId(41), 4u);  // past the end
}

TEST(IntDomain, AddBatchRemapsOldIds) {
  auto d = IntDomain::FromValues({10, 30, 50});
  std::vector<uint32_t> old_values{10, 30, 50};
  auto remap = d.AddBatch({20, 40});
  EXPECT_EQ(d.size(), 5u);
  // Every old ID's value is still reachable through the remap.
  for (size_t old_id = 0; old_id < old_values.size(); ++old_id) {
    EXPECT_EQ(d.Decode(remap[old_id]), old_values[old_id]);
  }
  // New values are encodable and ordering still holds.
  EXPECT_TRUE(d.Encode(20).has_value());
  EXPECT_LT(*d.Encode(20), *d.Encode(30));
}

TEST(IntDomain, AddBatchWithDuplicatesIsIdempotent) {
  auto d = IntDomain::FromValues({1, 2, 3});
  d.AddBatch({2, 3, 3, 4});
  EXPECT_EQ(d.size(), 4u);
}

TEST(StringDomain, EncodeDecode) {
  auto d = StringDomain::FromValues({"cherry", "apple", "banana", "apple"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(*d.Encode("apple"), 0u);
  EXPECT_EQ(*d.Encode("banana"), 1u);
  EXPECT_EQ(*d.Encode("cherry"), 2u);
  EXPECT_FALSE(d.Encode("durian").has_value());
  EXPECT_EQ(d.Decode(1), "banana");
}

TEST(StringDomain, OrderPreservingForStrings) {
  auto d = StringDomain::FromValues({"delta", "alpha", "charlie", "bravo"});
  EXPECT_LT(*d.Encode("alpha"), *d.Encode("bravo"));
  EXPECT_LT(*d.Encode("bravo"), *d.Encode("charlie"));
  // Range predicate name < "c" on IDs:
  uint32_t cutoff = d.LowerBoundId("c");
  EXPECT_EQ(cutoff, 2u);  // alpha, bravo are below
}

TEST(StringDomain, AddBatchRemap) {
  auto d = StringDomain::FromValues({"b", "d"});
  auto remap = d.AddBatch({"a", "c", "e"});
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.Decode(remap[0]), "b");
  EXPECT_EQ(d.Decode(remap[1]), "d");
}

TEST(IntDomain, LargeDomainEncodeThroughput) {
  // Sanity-scale test: a million-value domain encodes a column correctly.
  auto values = workload::DistinctSortedKeys(1'000'000, 7, 4);
  auto d = IntDomain::FromValues(values);
  std::vector<uint32_t> column;
  for (size_t i = 0; i < 10'000; ++i) {
    column.push_back(values[(i * 101) % values.size()]);
  }
  std::vector<size_t> missing;
  auto ids = d.EncodeColumn(column, &missing);
  EXPECT_TRUE(missing.empty());
  for (size_t i = 0; i < column.size(); ++i) {
    ASSERT_EQ(d.Decode(ids[i]), column[i]);
  }
}

}  // namespace
}  // namespace cssidx::domain
