#include "domain/domain.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "workload/key_gen.h"

namespace cssidx::domain {
namespace {

TEST(IntDomain, BuildSortsAndDedups) {
  auto d = IntDomain::FromValues({5, 3, 9, 3, 5, 1});
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.values(), (std::vector<uint32_t>{1, 3, 5, 9}));
}

TEST(IntDomain, EncodeDecodeRoundTrip) {
  auto values = workload::DistinctSortedKeys(10'000, 3, 8);
  auto d = IntDomain::FromValues(values);
  for (size_t i = 0; i < values.size(); i += 53) {
    auto id = d.Encode(values[i]);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, i);
    EXPECT_EQ(d.Decode(*id), values[i]);
  }
  EXPECT_FALSE(d.Encode(values.back() + 1).has_value());
}

TEST(IntDomain, IdsAreOrderPreserving) {
  auto d = IntDomain::FromValues({100, 50, 200, 10});
  // §2.1: inequality predicates evaluate on IDs directly.
  EXPECT_LT(*d.Encode(10), *d.Encode(50));
  EXPECT_LT(*d.Encode(50), *d.Encode(100));
  EXPECT_LT(*d.Encode(100), *d.Encode(200));
}

TEST(IntDomain, EncodeColumnReportsMissing) {
  auto d = IntDomain::FromValues({10, 20, 30});
  std::vector<size_t> missing;
  auto ids = d.EncodeColumn({10, 99, 30, 77}, &missing);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[2], 2u);
  EXPECT_EQ(missing, (std::vector<size_t>{1, 3}));
}

TEST(IntDomain, LowerBoundIdForRangePredicates) {
  auto d = IntDomain::FromValues({10, 20, 30, 40});
  EXPECT_EQ(d.LowerBoundId(25), 2u);  // first value >= 25 is 30 (id 2)
  EXPECT_EQ(d.LowerBoundId(10), 0u);
  EXPECT_EQ(d.LowerBoundId(41), 4u);  // past the end
}

TEST(IntDomain, AddBatchRemapsOldIds) {
  auto d = IntDomain::FromValues({10, 30, 50});
  std::vector<uint32_t> old_values{10, 30, 50};
  auto remap = d.AddBatch({20, 40});
  EXPECT_EQ(d.size(), 5u);
  // Every old ID's value is still reachable through the remap.
  for (size_t old_id = 0; old_id < old_values.size(); ++old_id) {
    EXPECT_EQ(d.Decode(remap[old_id]), old_values[old_id]);
  }
  // New values are encodable and ordering still holds.
  EXPECT_TRUE(d.Encode(20).has_value());
  EXPECT_LT(*d.Encode(20), *d.Encode(30));
}

TEST(IntDomain, AddBatchWithDuplicatesIsIdempotent) {
  auto d = IntDomain::FromValues({1, 2, 3});
  d.AddBatch({2, 3, 3, 4});
  EXPECT_EQ(d.size(), 4u);
}

TEST(StringDomain, EncodeDecode) {
  auto d = StringDomain::FromValues({"cherry", "apple", "banana", "apple"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(*d.Encode("apple"), 0u);
  EXPECT_EQ(*d.Encode("banana"), 1u);
  EXPECT_EQ(*d.Encode("cherry"), 2u);
  EXPECT_FALSE(d.Encode("durian").has_value());
  EXPECT_EQ(d.Decode(1), "banana");
}

TEST(StringDomain, OrderPreservingForStrings) {
  auto d = StringDomain::FromValues({"delta", "alpha", "charlie", "bravo"});
  EXPECT_LT(*d.Encode("alpha"), *d.Encode("bravo"));
  EXPECT_LT(*d.Encode("bravo"), *d.Encode("charlie"));
  // Range predicate name < "c" on IDs:
  uint32_t cutoff = d.LowerBoundId("c");
  EXPECT_EQ(cutoff, 2u);  // alpha, bravo are below
}

TEST(StringDomain, AddBatchRemap) {
  auto d = StringDomain::FromValues({"b", "d"});
  auto remap = d.AddBatch({"a", "c", "e"});
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.Decode(remap[0]), "b");
  EXPECT_EQ(d.Decode(remap[1]), "d");
}

TEST(StringDomain, RandomValuesRoundTripAgainstSortedDistinctOracle) {
  // Property test for the serving/engine string path: a dictionary built
  // from a random multiset of words must behave exactly like the STL
  // sorted-distinct oracle for Encode, Decode, and LowerBoundId — for
  // values inside the dictionary AND probe strings that are not (prefixes,
  // extensions, the empty string).
  Pcg32 rng(0x5712);
  const std::string alphabet = "abcdz";
  auto random_word = [&] {
    std::string w(1 + rng.Below(6), 'a');
    for (auto& c : w) c = alphabet[rng.Below(5)];
    return w;
  };
  std::vector<std::string> values(2'000);
  for (auto& v : values) v = random_word();
  values.push_back("");  // the empty string sorts first; keep it legal

  std::vector<std::string> oracle = values;
  std::sort(oracle.begin(), oracle.end());
  oracle.erase(std::unique(oracle.begin(), oracle.end()), oracle.end());

  auto d = StringDomain::FromValues(values);
  ASSERT_EQ(d.size(), oracle.size());
  for (uint32_t id = 0; id < oracle.size(); ++id) {
    ASSERT_EQ(d.Decode(id), oracle[id]);
    ASSERT_EQ(d.Encode(oracle[id]), std::optional<uint32_t>(id));
  }
  std::vector<std::string> probes;
  for (int i = 0; i < 500; ++i) probes.push_back(random_word());
  probes.push_back("");
  probes.push_back("zzzzzzzz");  // above every word in the alphabet
  for (const std::string& p : probes) {
    const auto it = std::lower_bound(oracle.begin(), oracle.end(), p);
    const auto expect_lb = static_cast<uint32_t>(it - oracle.begin());
    ASSERT_EQ(d.LowerBoundId(p), expect_lb) << p;
    if (it != oracle.end() && *it == p) {
      ASSERT_EQ(d.Encode(p), std::optional<uint32_t>(expect_lb)) << p;
    } else {
      ASSERT_FALSE(d.Encode(p).has_value()) << p;
    }
  }
}

TEST(StringDomain, AddBatchRemapIsStrictlyIncreasing) {
  // The writer-side invariant the serving layer's string apply path leans
  // on: growing the dictionary remaps old IDs STRICTLY upward (order
  // preserved, no two old IDs collapse), so a sorted snapshot of ID keys
  // stays sorted after remapping and feeds straight into ApplySortedBatch.
  Pcg32 rng(0x5713);
  const std::string alphabet = "mnopq";
  auto random_word = [&] {
    std::string w(1 + rng.Below(5), 'a');
    for (auto& c : w) c = alphabet[rng.Below(5)];
    return w;
  };
  std::vector<std::string> base(300), grow(300);
  for (auto& v : base) v = random_word();
  for (auto& v : grow) v = random_word();

  auto d = StringDomain::FromValues(base);
  std::vector<std::string> old_values(d.size());
  for (uint32_t id = 0; id < d.size(); ++id) old_values[id] = d.Decode(id);

  auto remap = d.AddBatch(grow);
  ASSERT_EQ(remap.size(), old_values.size());
  for (size_t id = 0; id < remap.size(); ++id) {
    // Old values stay reachable at their remapped IDs...
    ASSERT_EQ(d.Decode(remap[id]), old_values[id]);
    // ...and the remap is strictly increasing.
    if (id > 0) {
      ASSERT_GT(remap[id], remap[id - 1]);
    }
  }
  // Every grown-in value is now encodable, and the whole dictionary is
  // still sorted-distinct.
  for (const auto& v : grow) ASSERT_TRUE(d.Encode(v).has_value()) << v;
  for (uint32_t id = 1; id < d.size(); ++id) {
    ASSERT_LT(d.Decode(id - 1), d.Decode(id));
  }
}

TEST(IntDomain, LargeDomainEncodeThroughput) {
  // Sanity-scale test: a million-value domain encodes a column correctly.
  auto values = workload::DistinctSortedKeys(1'000'000, 7, 4);
  auto d = IntDomain::FromValues(values);
  std::vector<uint32_t> column;
  for (size_t i = 0; i < 10'000; ++i) {
    column.push_back(values[(i * 101) % values.size()]);
  }
  std::vector<size_t> missing;
  auto ids = d.EncodeColumn(column, &missing);
  EXPECT_TRUE(missing.empty());
  for (size_t i = 0; i < column.size(); ++i) {
    ASSERT_EQ(d.Decode(ids[i]), column[i]);
  }
}

}  // namespace
}  // namespace cssidx::domain
