#include "baselines/chained_hash.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "workload/key_gen.h"

namespace cssidx {
namespace {

TEST(ChainedHash, FindsEveryKey) {
  auto keys = workload::DistinctSortedKeys(10'000, 3, 4);
  ChainedHashIndex<64> index(keys, /*dir_bits=*/10);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(index.Find(keys[i]), static_cast<int64_t>(i));
  }
}

TEST(ChainedHash, MissingKeysNotFound) {
  auto keys = workload::DistinctSortedKeys(1000, 3, 4);
  ChainedHashIndex<64> index(keys, 8);
  for (Key k : keys) {
    // Gaps >= 1 guarantee k-... may exist; probe keys outside the set.
    if (!std::binary_search(keys.begin(), keys.end(), k + 1)) {
      ASSERT_EQ(index.Find(k + 1), kNotFound);
    }
  }
  EXPECT_EQ(index.Find(0), kNotFound);
}

TEST(ChainedHash, DirectoryOfOneBucketStillCorrect) {
  // Failure injection: everything chains off a single directory slot.
  auto keys = workload::DistinctSortedKeys(500, 7, 4);
  ChainedHashIndex<64> index(keys, 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(index.Find(keys[i]), static_cast<int64_t>(i));
  }
  EXPECT_GE(index.MaxChainBuckets(), 500u / 7);
}

TEST(ChainedHash, DuplicatesReturnLeftmostAndCountAll) {
  auto keys = workload::KeysWithDuplicates(2000, 60, 5);
  ChainedHashIndex<64> index(keys, 8);
  for (Key k : keys) {
    auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    EXPECT_EQ(index.Find(k), lo - keys.begin());
    EXPECT_EQ(index.CountEqual(k), static_cast<size_t>(hi - lo));
  }
}

TEST(ChainedHash, BucketIsExactlyOneCacheLine) {
  EXPECT_EQ(sizeof(ChainedHashIndex<64>::Bucket), 64u);
  EXPECT_EQ(sizeof(ChainedHashIndex<32>::Bucket), 32u);
  EXPECT_EQ(ChainedHashIndex<64>::kPairsPerBucket, 7);
  EXPECT_EQ(ChainedHashIndex<32>::kPairsPerBucket, 3);
}

TEST(ChainedHash, SpaceIsDirectoryPlusOverflow) {
  auto keys = workload::DistinctSortedKeys(1000, 3, 4);
  ChainedHashIndex<64> small_dir(keys, 4);   // 16 buckets + many overflows
  ChainedHashIndex<64> big_dir(keys, 12);    // 4096 buckets, few overflows
  EXPECT_GE(small_dir.SpaceBytes(), (1000 / 7) * 64u);
  EXPECT_GE(big_dir.SpaceBytes(), 4096u * 64);
  EXPECT_GT(big_dir.SpaceBytes(), small_dir.SpaceBytes());
}

TEST(ChainedHash, SkewedKeysDegradeChains) {
  // Low-order-bit hashing on stride-64 keys wastes most of the directory:
  // the paper's skew warning (§3.5).
  std::vector<Key> strided;
  for (Key i = 0; i < 1000; ++i) strided.push_back(i * 64);
  ChainedHashIndex<64> skewed(strided, 10);  // only 16 of 1024 slots used

  auto uniform = workload::DistinctSortedKeys(1000, 3, 4);
  ChainedHashIndex<64> good(uniform, 10);

  EXPECT_GT(skewed.MaxChainBuckets(), 4 * good.MaxChainBuckets());
  // Still correct, just slow.
  for (size_t i = 0; i < strided.size(); ++i) {
    ASSERT_EQ(skewed.Find(strided[i]), static_cast<int64_t>(i));
  }
}

TEST(ChainedHash, MultiplicativeHashFindsEveryKey) {
  auto keys = workload::DistinctSortedKeys(5'000, 3, 4);
  ChainedHashIndex<64> index(keys.data(), keys.size(), 9,
                             HashFunction::kMultiplicative);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(index.Find(keys[i]), static_cast<int64_t>(i));
  }
  EXPECT_EQ(index.Find(keys.back() + 1), kNotFound);
}

TEST(ChainedHash, MultiplicativeHashResistsLowBitSkew) {
  // §3.5's "sophisticated hash function" point: stride-64 keys collapse
  // low-order-bit hashing onto 1/16 of the directory; multiplicative
  // hashing spreads them.
  std::vector<Key> strided;
  for (Key i = 0; i < 2000; ++i) strided.push_back(i * 64);
  ChainedHashIndex<64> low(strided.data(), strided.size(), 10,
                           HashFunction::kLowOrderBits);
  ChainedHashIndex<64> mult(strided.data(), strided.size(), 10,
                            HashFunction::kMultiplicative);
  EXPECT_GT(low.MaxChainBuckets(), 6 * mult.MaxChainBuckets());
  for (size_t i = 0; i < strided.size(); i += 71) {
    ASSERT_EQ(mult.Find(strided[i]), static_cast<int64_t>(i));
  }
}

TEST(ChainedHash, MultiplicativeDegenerateDirectories) {
  auto keys = workload::DistinctSortedKeys(100, 3, 4);
  for (int bits : {0, 1, 2}) {
    ChainedHashIndex<64> index(keys.data(), keys.size(), bits,
                               HashFunction::kMultiplicative);
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(index.Find(keys[i]), static_cast<int64_t>(i)) << bits;
    }
  }
}

TEST(ChainedHash, EmptyTable) {
  std::vector<Key> empty;
  ChainedHashIndex<64> index(empty, 4);
  EXPECT_EQ(index.Find(1), kNotFound);
  EXPECT_EQ(index.CountEqual(1), 0u);
}

}  // namespace
}  // namespace cssidx
