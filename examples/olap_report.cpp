// End-to-end decision-support report over the mini engine: load a star
// schema (orders fact table + customers dimension), domain-encode the
// region strings, build CSS-tree sort indexes, and answer
//
//   "revenue per region for orders in a date window, top regions first"
//
// — the kind of query the paper's introduction motivates, exercising
// domain encoding (§2.1), range selection via the sorted RID list (§2.2),
// indexed nested-loop join (§2.2), and rebuild-on-batch maintenance.
//
//   $ ./olap_report [--orders=2000000] [--customers=100000]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "domain/domain.h"
#include "engine/query.h"
#include "engine/table.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cssidx;
  using namespace cssidx::engine;
  CliArgs args(argc, argv);
  size_t num_orders = static_cast<size_t>(args.GetInt("orders", 2'000'000));
  size_t num_customers =
      static_cast<size_t>(args.GetInt("customers", 100'000));

  // --- Load the dimension: customers with a string region column, domain
  // encoded so rows hold 4-byte order-preserving IDs (§2.1).
  std::vector<std::string> region_names{"APAC", "EMEA", "LATAM",
                                        "NA-EAST", "NA-WEST"};
  auto region_domain = domain::StringDomain::FromValues(region_names);

  Pcg32 rng(42);
  Table customers;
  {
    std::vector<uint32_t> id(num_customers), region(num_customers);
    for (size_t i = 0; i < num_customers; ++i) {
      id[i] = static_cast<uint32_t>(i);
      region[i] = *region_domain.Encode(
          region_names[rng.Below(static_cast<uint32_t>(region_names.size()))]);
    }
    customers.AddColumn("id", std::move(id));
    customers.AddColumn("region", std::move(region));
  }
  customers.BuildSortIndex("id");

  // --- Load the fact table.
  Table orders;
  {
    std::vector<uint32_t> customer(num_orders), day(num_orders),
        amount(num_orders);
    for (size_t i = 0; i < num_orders; ++i) {
      customer[i] = rng.Below(static_cast<uint32_t>(num_customers));
      day[i] = rng.Below(365);
      amount[i] = 1 + rng.Below(500);
    }
    orders.AddColumn("customer", std::move(customer));
    orders.AddColumn("day", std::move(day));
    orders.AddColumn("amount", std::move(amount));
  }
  Timer index_timer;
  orders.BuildSortIndex("day");
  std::printf("loaded %zu orders, %zu customers; day sort-index built in "
              "%.1f ms (%.1f MB incl. CSS directory)\n",
              num_orders, num_customers, index_timer.Millis(),
              orders.GetSortIndex("day").SpaceBytes() / 1e6);

  // --- The report: Q2 (days 91..181), revenue per region.
  Timer query_timer;
  auto window = SelectRange(orders, "day", 91, 182);
  const auto& amount = orders.Column("amount");
  const auto& customer = orders.Column("customer");
  const auto& region = customers.Column("region");
  const SortIndex& cidx = customers.GetSortIndex("id");

  std::vector<uint64_t> revenue(region_names.size(), 0);
  std::vector<uint64_t> count(region_names.size(), 0);
  for (Rid r : window) {
    // Indexed nested-loop probe into the dimension (§2.2).
    auto matches = cidx.Equal(customer[r]);
    uint32_t reg = region[matches[0]];
    revenue[reg] += amount[r];
    ++count[reg];
  }
  double sec = query_timer.Seconds();

  std::printf("\nQ2 report (%zu of %zu orders in window), computed in %.3f "
              "s:\n\n", window.size(), num_orders, sec);
  std::vector<size_t> order_idx(region_names.size());
  for (size_t i = 0; i < order_idx.size(); ++i) order_idx[i] = i;
  std::sort(order_idx.begin(), order_idx.end(),
            [&](size_t a, size_t b) { return revenue[a] > revenue[b]; });
  std::printf("%-10s %14s %12s\n", "region", "revenue", "orders");
  for (size_t i : order_idx) {
    std::printf("%-10s %14llu %12llu\n",
                region_domain.Decode(static_cast<uint32_t>(i)).c_str(),
                static_cast<unsigned long long>(revenue[i]),
                static_cast<unsigned long long>(count[i]));
  }

  // --- Maintenance: a late-arriving batch of orders lands; rebuild the
  // sort index (the paper's OLAP assumption: rebuilds are cheap).
  size_t late = num_orders / 100;
  {
    auto day_col = orders.Column("day");
    auto cust_col = orders.Column("customer");
    auto amt_col = orders.Column("amount");
    for (size_t i = 0; i < late; ++i) {
      day_col.push_back(120);  // all in the window
      cust_col.push_back(rng.Below(static_cast<uint32_t>(num_customers)));
      amt_col.push_back(100);
    }
    Table updated;
    updated.AddColumn("day", std::move(day_col));
    updated.AddColumn("customer", std::move(cust_col));
    updated.AddColumn("amount", std::move(amt_col));
    orders = std::move(updated);
  }
  Timer rebuild_timer;
  orders.BuildSortIndex("day");
  auto window2 = SelectRange(orders, "day", 91, 182);
  std::printf("\nbatch of %zu late orders absorbed; index rebuilt in %.1f ms;"
              " window now %zu orders\n",
              late, rebuild_timer.Millis(), window2.size());
  if (window2.size() != window.size() + late) {
    std::printf("CONSISTENCY ERROR\n");
    return 1;
  }
  return 0;
}
