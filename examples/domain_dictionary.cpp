// Domain dictionary encoding (§2.1): the paper's main-memory DBMS keeps
// each column's distinct values in a *sorted* external "domain" and stores
// only integer domain IDs in place. Loading data therefore needs one
// sorted-domain search per cell — exactly the workload CSS-trees are built
// for — and because the domain stays sorted, range predicates evaluate
// directly on the IDs.
//
//   $ ./domain_dictionary [--rows=2000000] [--distinct=100000]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/full_css_tree.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/key_gen.h"

int main(int argc, char** argv) {
  using namespace cssidx;
  CliArgs args(argc, argv);
  size_t rows = static_cast<size_t>(args.GetInt("rows", 2'000'000));
  size_t distinct = static_cast<size_t>(args.GetInt("distinct", 100'000));

  // The domain: sorted distinct values of, say, a "price" column.
  std::vector<Key> domain = workload::DistinctSortedKeys(distinct, 7, 16);
  FullCssTree<16> dictionary(domain);
  std::printf("domain: %zu distinct values, dictionary directory %.1f KB\n",
              distinct, dictionary.SpaceBytes() / 1e3);

  // Raw column data arriving at load time: row values drawn from the
  // domain (a real loader would add new values to the domain batch-wise).
  Pcg32 rng(11);
  std::vector<Key> raw(rows);
  for (auto& v : raw) {
    v = domain[rng.Below(static_cast<uint32_t>(distinct))];
  }

  // Encode: value -> domain ID via dictionary search. This is the §2.2
  // "transforming domain values to domain IDs requires searching on the
  // domain" path.
  std::vector<uint32_t> encoded(rows);
  Timer timer;
  for (size_t i = 0; i < rows; ++i) {
    encoded[i] = static_cast<uint32_t>(dictionary.Find(raw[i]));
  }
  double sec = timer.Seconds();
  std::printf("encoded %zu rows in %.3f s (%.0f ns/value)\n", rows, sec,
              sec / static_cast<double>(rows) * 1e9);

  // The column now stores 4-byte IDs; equality AND inequality predicates
  // work on IDs because the domain is sorted (the paper's improvement over
  // unsorted domains, §2.1). Example: price < P.
  Key cutoff_value = domain[distinct / 4];
  auto cutoff_id = static_cast<uint32_t>(dictionary.LowerBound(cutoff_value));
  size_t hits = 0;
  for (uint32_t id : encoded) {
    if (id < cutoff_id) ++hits;  // no dictionary access needed per row
  }
  std::printf("predicate value < %u: %zu of %zu rows (%.1f%%), evaluated on "
              "IDs only\n",
              cutoff_value, hits, rows, 100.0 * hits / rows);

  // Decode spot-check: IDs map back through the domain array.
  for (size_t i = 0; i < rows; i += rows / 7 + 1) {
    if (domain[encoded[i]] != raw[i]) {
      std::printf("DECODE MISMATCH at row %zu\n", i);
      return 1;
    }
  }
  std::printf("decode spot-checks passed\n");
  return 0;
}
