// Index advisor: the operational version of Figure 14's stepped line.
// Given a space budget (bytes of extra memory available beyond the sorted
// RID list), measure every method that fits and recommend the fastest —
// "the stepped line basically tells us how to find the optimal searching
// time for a given amount of space" (§7).
//
// Probes are issued through the batch API — the access pattern OLAP
// front-ends generate — so methods with group-probing kernels are ranked
// by their real, miss-overlapped throughput.
//
//   $ ./index_advisor --budget=2000000 [--n=2000000] [--lookups=50000]
//                     [--batch=64] [--spec=css:16 --spec-only]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/builder.h"
#include "util/cli.h"
#include "util/timer.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using namespace cssidx;

struct Candidate {
  std::string name;
  std::string spec;
  size_t space;
  double seconds;
  bool ordered;
};

double TimeLookups(const AnyIndex& index, const std::vector<Key>& lookups,
                   size_t batch) {
  std::vector<int64_t> out(lookups.size());
  Timer timer;
  FindBlocked(index, lookups, batch, out);
  double sec = timer.Seconds();
  uint64_t sink = 0;
  for (int64_t v : out) sink += static_cast<uint64_t>(v);
  if (sink == 0xdeadbeef) std::printf("!");  // keep the loop alive
  return sec;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  size_t n = static_cast<size_t>(args.GetInt("n", 2'000'000));
  size_t budget = static_cast<size_t>(args.GetInt("budget", 2'000'000));
  size_t num_lookups = static_cast<size_t>(args.GetInt("lookups", 50'000));
  size_t batch = static_cast<size_t>(args.GetInt("batch", 64));
  bool need_order = args.GetBool("need-ordered-access", false);

  auto keys = workload::DistinctSortedKeys(n, 3, 4);
  auto lookups = workload::MatchingLookups(keys, num_lookups, 4);
  std::printf("advising for n=%zu keys, space budget %.2f MB, batch=%zu%s\n\n",
              n, budget / 1e6, batch,
              need_order ? ", ordered access required" : "");

  // Enumerate the menu: every method at every node size / directory size,
  // deduped so an explicit --spec that is also on the menu runs once.
  std::vector<IndexSpec> menu;
  auto enlist = [&](const IndexSpec& spec) {
    if (std::find(menu.begin(), menu.end(), spec) == menu.end()) {
      menu.push_back(spec);
    }
  };

  if (args.Has("spec")) {
    // Explicit spec from the command line, e.g. --spec=lcss:64.
    auto spec = IndexSpec::Parse(args.GetString("spec", ""));
    if (!spec) {
      std::printf("unparseable --spec; %s\n", IndexSpec::GrammarHelp());
      return 1;
    }
    enlist(*spec);
  }
  if (!args.GetBool("spec-only", false)) {
    for (const IndexSpec& spec : AllSpecs()) {
      if (!spec.sized()) {
        if (spec.ordered()) enlist(spec);
        continue;
      }
      for (int m : {8, 16, 32, 64}) {
        IndexSpec sized = spec.WithNodeEntries(m);
        if (sized.OnMenu()) enlist(sized);
      }
    }
    for (int bits : {16, 18, 20, 22}) {
      enlist(*IndexSpec::Parse("hash:" + std::to_string(bits)));
    }
    // Range-partitioned composites: K smaller CSS-trees behind one
    // facade. Near-identical space to the bare tree, so they compete on
    // routing overhead vs shard locality — and rank honestly either way.
    for (int k : {4, 16}) {
      enlist(IndexSpec().WithPartitions(k));
    }
  }

  std::vector<Candidate> candidates;
  for (const IndexSpec& spec : menu) {
    AnyIndex index = BuildIndex(spec, keys);
    if (!index) continue;
    Candidate c{index.Name(), spec.ToString(), index.SpaceBytes(), 0,
                index.SupportsOrderedAccess()};
    if (c.space > budget) continue;            // over budget: skip
    if (need_order && !c.ordered) continue;    // hash can't serve order
    c.seconds = TimeLookups(index, lookups, batch);
    candidates.push_back(std::move(c));
  }

  if (candidates.empty()) {
    std::printf("nothing fits the budget — binary search (0 bytes) always "
                "works; raise the budget.\n");
    return 1;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seconds < b.seconds;
            });

  std::printf("%-24s %-10s %12s %12s %8s\n", "method", "spec", "space (MB)",
              "time (s)", "ordered");
  for (const auto& c : candidates) {
    std::printf("%-24s %-10s %12.2f %12.4f %8s\n", c.name.c_str(),
                c.spec.c_str(), c.space / 1e6, c.seconds,
                c.ordered ? "Y" : "N");
  }
  std::printf("\nrecommendation: %s (--spec=%s, %.2f MB, %.4f s per %zu "
              "lookups)\n",
              candidates.front().name.c_str(), candidates.front().spec.c_str(),
              candidates.front().space / 1e6, candidates.front().seconds,
              num_lookups);
  return 0;
}
