// Index advisor: the operational version of Figure 14's stepped line.
// Given a space budget (bytes of extra memory available beyond the sorted
// RID list), measure every method that fits and recommend the fastest —
// "the stepped line basically tells us how to find the optimal searching
// time for a given amount of space" (§7).
//
//   $ ./index_advisor --budget=2000000 [--n=2000000] [--lookups=50000]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/builder.h"
#include "util/cli.h"
#include "util/timer.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using namespace cssidx;

struct Candidate {
  std::string name;
  size_t space;
  double seconds;
  bool ordered;
};

double TimeLookups(const IndexHandle& index, const std::vector<Key>& lookups) {
  uint64_t sink = 0;
  Timer timer;
  for (Key k : lookups) sink += static_cast<uint64_t>(index.Find(k));
  double sec = timer.Seconds();
  if (sink == 0xdeadbeef) std::printf("!");  // keep the loop alive
  return sec;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  size_t n = static_cast<size_t>(args.GetInt("n", 2'000'000));
  size_t budget = static_cast<size_t>(args.GetInt("budget", 2'000'000));
  size_t num_lookups = static_cast<size_t>(args.GetInt("lookups", 50'000));
  bool need_order = args.GetBool("need-ordered-access", false);

  auto keys = workload::DistinctSortedKeys(n, 3, 4);
  auto lookups = workload::MatchingLookups(keys, num_lookups, 4);
  std::printf("advising for n=%zu keys, space budget %.2f MB%s\n\n", n,
              budget / 1e6, need_order ? ", ordered access required" : "");

  // Enumerate the menu: every method at every node size / directory size.
  std::vector<Candidate> candidates;
  auto consider = [&](Method method, BuildOptions opts) {
    auto index = BuildIndex(method, keys, opts);
    if (!index) return;
    Candidate c{index->Name(), index->SpaceBytes(), 0,
                index->SupportsOrderedAccess()};
    if (c.space > budget) return;              // over budget: skip
    if (need_order && !c.ordered) return;      // hash can't serve order
    c.seconds = TimeLookups(*index, lookups);
    candidates.push_back(std::move(c));
  };

  BuildOptions opts;
  consider(Method::kBinarySearch, opts);
  consider(Method::kInterpolation, opts);
  consider(Method::kTreeBinarySearch, opts);
  for (int m : {8, 16, 32, 64}) {
    opts.node_entries = m;
    consider(Method::kTTree, opts);
    consider(Method::kBPlusTree, opts);
    consider(Method::kFullCss, opts);
    if ((m & (m - 1)) == 0) consider(Method::kLevelCss, opts);
  }
  for (int bits : {16, 18, 20, 22}) {
    opts.hash_dir_bits = bits;
    consider(Method::kHash, opts);
  }

  if (candidates.empty()) {
    std::printf("nothing fits the budget — binary search (0 bytes) always "
                "works; raise the budget.\n");
    return 1;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seconds < b.seconds;
            });

  std::printf("%-24s %12s %12s %8s\n", "method", "space (MB)", "time (s)",
              "ordered");
  for (const auto& c : candidates) {
    std::printf("%-24s %12.2f %12.4f %8s\n", c.name.c_str(), c.space / 1e6,
                c.seconds, c.ordered ? "Y" : "N");
  }
  std::printf("\nrecommendation: %s (%.2f MB, %.4f s per %zu lookups)\n",
              candidates.front().name.c_str(),
              candidates.front().space / 1e6, candidates.front().seconds,
              num_lookups);
  return 0;
}
