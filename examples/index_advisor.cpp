// Index advisor: the operational version of Figure 14's stepped line.
// Given a space budget (bytes of extra memory available beyond the sorted
// RID list), measure every method that fits and recommend the fastest —
// "the stepped line basically tells us how to find the optimal searching
// time for a given amount of space" (§7).
//
// Probes are issued through the batch API — the access pattern OLAP
// front-ends generate — so methods with group-probing kernels are ranked
// by their real, miss-overlapped throughput. Timing follows the bench
// harness protocol (§6.1): one untimed warmup pass per candidate, then
// best-of-`--repeats` wall clock, results fed to the harness's volatile
// sink so the optimizer cannot delete the probe loop.
//
// The measured table is cross-checked against the model-only advisor
// (src/advisor/): the same workload, described as a WorkloadProfile, is
// scored analytically and both picks are printed — when they disagree,
// the gap between the model's ns/probe and the measured one says whether
// the model or the machine is the outlier.
//
//   $ ./index_advisor --budget=2000000 [--n=2000000] [--lookups=50000]
//                     [--batch=64] [--repeats=3] [--spec=css:16 --spec-only]
//                     [--need-ordered-access]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "advisor/advisor.h"
#include "harness.h"
#include "core/builder.h"
#include "util/cli.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using namespace cssidx;

struct Candidate {
  std::string name;
  std::string spec;
  size_t space;
  double seconds;
  bool ordered;
};

// One untimed pass to fault in the node array and warm the branch
// predictors, then the harness's best-of-k measurement (minimum over
// `repeats` full-batch runs, sink through bench::g_sink).
double TimeLookups(const AnyIndex& index, const std::vector<Key>& lookups,
                   size_t batch, int repeats) {
  std::vector<int64_t> out(lookups.size());
  FindBlocked(index, lookups, batch, out);
  for (int64_t v : out) bench::g_sink = bench::g_sink + static_cast<uint64_t>(v);
  return bench::MinFindBatchSeconds(index, lookups, batch, repeats);
}

[[noreturn]] void Die(const char* fmt, const std::string& arg) {
  std::fprintf(stderr, "error: ");
  std::fprintf(stderr, fmt, arg.c_str());
  std::fprintf(stderr, "\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  size_t n = static_cast<size_t>(args.GetInt("n", 2'000'000));
  size_t budget = static_cast<size_t>(args.GetInt("budget", 2'000'000));
  size_t num_lookups = static_cast<size_t>(args.GetInt("lookups", 50'000));
  size_t batch = static_cast<size_t>(args.GetInt("batch", 64));
  int repeats = static_cast<int>(args.GetInt("repeats", 3));
  bool need_order = args.GetBool("need-ordered-access", false);
  bool spec_only = args.GetBool("spec-only", false);
  if (repeats < 1) repeats = 1;
  if (spec_only && !args.Has("spec")) {
    Die("--spec-only needs an explicit --spec=<spec> to measure%s", "");
  }

  auto keys = workload::DistinctSortedKeys(n, 3, 4);
  auto lookups = workload::MatchingLookups(keys, num_lookups, 4);
  std::printf(
      "advising for n=%zu keys, space budget %.2f MB, batch=%zu, "
      "best of %d%s\n\n",
      n, budget / 1e6, batch, repeats,
      need_order ? ", ordered access required" : "");

  // Enumerate the menu: every method at every node size / directory size,
  // deduped so an explicit --spec that is also on the menu runs once.
  std::vector<IndexSpec> menu;
  auto enlist = [&](const IndexSpec& spec) {
    if (std::find(menu.begin(), menu.end(), spec) == menu.end()) {
      menu.push_back(spec);
    }
  };

  if (args.Has("spec")) {
    // Explicit spec from the command line, e.g. --spec=lcss:64.
    auto spec = IndexSpec::Parse(args.GetString("spec", ""));
    if (!spec) {
      std::fprintf(stderr, "error: unparseable --spec; %s\n",
                   IndexSpec::GrammarHelp());
      return 1;
    }
    enlist(*spec);
  }
  if (!spec_only) {
    for (const IndexSpec& spec : AllSpecs()) {
      if (!spec.sized()) {
        if (spec.ordered()) enlist(spec);
        continue;
      }
      for (int m : {8, 16, 32, 64}) {
        IndexSpec sized = spec.WithNodeEntries(m);
        if (sized.OnMenu()) enlist(sized);
      }
    }
    for (int bits : {16, 18, 20, 22}) {
      enlist(*IndexSpec::Parse("hash:" + std::to_string(bits)));
    }
    // Range-partitioned composites: K smaller CSS-trees behind one
    // facade. Near-identical space to the bare tree, so they compete on
    // routing overhead vs shard locality — and rank honestly either way.
    for (int k : {4, 16}) {
      enlist(IndexSpec().WithPartitions(k));
    }
  }

  // Measure the menu. Every filtered-out candidate is diagnosed so an
  // empty result names its cause instead of "recommending nothing": an
  // unbuildable --spec-only spec, a budget nothing fits, or an
  // ordered-access requirement hash can't meet.
  std::vector<Candidate> candidates;
  size_t unbuildable = 0, over_budget = 0, unordered = 0;
  for (const IndexSpec& spec : menu) {
    AnyIndex index = BuildIndex(spec, keys);
    if (!index) {
      ++unbuildable;
      if (spec_only) {
        Die("--spec=%s is not buildable for this key set", spec.ToString());
      }
      continue;
    }
    Candidate c{index.Name(), spec.ToString(), index.SpaceBytes(), 0,
                index.SupportsOrderedAccess()};
    if (c.space > budget) {
      ++over_budget;
      if (spec_only) {
        Die("--spec=%s needs more space than --budget allows", spec.ToString());
      }
      continue;
    }
    if (need_order && !c.ordered) {
      ++unordered;
      if (spec_only) {
        Die("--spec=%s cannot serve --need-ordered-access", spec.ToString());
      }
      continue;
    }
    c.seconds = TimeLookups(index, lookups, batch, repeats);
    candidates.push_back(std::move(c));
  }

  if (candidates.empty()) {
    std::fprintf(stderr,
                 "error: no candidate survived the filters (%zu unbuildable, "
                 "%zu over budget, %zu unordered) — binary search (0 bytes) "
                 "always works; raise --budget or relax the filters.\n",
                 unbuildable, over_budget, unordered);
    return 1;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seconds < b.seconds;
            });

  std::printf("%-24s %-10s %12s %12s %8s\n", "method", "spec", "space (MB)",
              "time (s)", "ordered");
  for (const auto& c : candidates) {
    std::printf("%-24s %-10s %12.2f %12.4f %8s\n", c.name.c_str(),
                c.spec.c_str(), c.space / 1e6, c.seconds,
                c.ordered ? "Y" : "N");
  }
  std::printf("\nrecommendation: %s (--spec=%s, %.2f MB, %.4f s per %zu "
              "lookups)\n",
              candidates.front().name.c_str(), candidates.front().spec.c_str(),
              candidates.front().space / 1e6, candidates.front().seconds,
              num_lookups);

  // Cross-check: the model-only advisor on the same workload shape —
  // all-hit point probes in `batch`-sized groups, no updates.
  if (!spec_only) {
    WorkloadProfile profile;
    size_t full = num_lookups / std::max<size_t>(batch, 1);
    size_t bucket = 0;
    for (size_t b = batch; b > 1; b >>= 1) ++bucket;
    if (bucket >= WorkloadProfile::kBatchBuckets) {
      bucket = WorkloadProfile::kBatchBuckets - 1;
    }
    profile.batch_hist[bucket] = full;
    profile.point_probes = num_lookups;
    profile.probe_batches = std::max<uint64_t>(full, 1);
    advisor::AdvisorOptions opts;
    opts.space_budget_bytes = budget;
    opts.need_ordered_access = need_order;
    auto rec = advisor::Advise(profile, keys.size(), opts);
    if (rec.ok) {
      std::printf("model pick:     --spec=%s (modeled %.1f ns/probe)%s\n",
                  rec.spec.ToString().c_str(), rec.ranked.front().cost_ns,
                  rec.spec.ToString() == candidates.front().spec
                      ? " — agrees with measurement"
                      : "");
    }
  }
  return 0;
}
