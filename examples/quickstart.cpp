// Quickstart: build a CSS-tree over a sorted array and run point lookups,
// range queries, and a batch update + rebuild — the whole OLAP lifecycle
// from the paper in ~60 lines.
//
//   $ ./quickstart [--n=1000000] [--spec=lcss:16]

#include <cstdio>

#include "core/builder.h"
#include "core/full_css_tree.h"
#include "core/level_css_tree.h"
#include "core/maintained_index.h"
#include "util/cli.h"
#include "util/timer.h"
#include "workload/batch_update.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

int main(int argc, char** argv) {
  using namespace cssidx;
  CliArgs args(argc, argv);
  size_t n = static_cast<size_t>(args.GetInt("n", 1'000'000));

  // 1. The data: a sorted array of distinct keys. In a main-memory DBMS
  //    this is the RID list sorted by some attribute (§2.2); position i in
  //    the array is the record identifier.
  std::vector<Key> keys = workload::DistinctSortedKeys(n, /*seed=*/1);
  std::printf("sorted array: %zu keys, %.1f MB\n", keys.size(),
              keys.size() * sizeof(Key) / 1e6);

  // 2. Build the directory. 16 keys per node = one 64-byte cache line.
  Timer build_timer;
  FullCssTree<16> index(keys);
  std::printf("full CSS-tree built in %.3f ms, directory %.1f KB (%.2f%% of "
              "the data)\n",
              build_timer.Millis(), index.SpaceBytes() / 1e3,
              100.0 * index.SpaceBytes() / (keys.size() * sizeof(Key)));

  // 3. Point lookups: Find returns the position (= RID) of the leftmost
  //    match, or cssidx::kNotFound.
  Key present = keys[n / 3];
  Key absent = keys.back() + 1;
  std::printf("Find(%u)  -> %lld\n", present,
              static_cast<long long>(index.Find(present)));
  std::printf("Find(%u) -> %lld (not found)\n", absent,
              static_cast<long long>(index.Find(absent)));

  // 4. Range query [lo, hi): two LowerBound calls bracket the positions.
  Key lo_key = keys[n / 2];
  Key hi_key = lo_key + 200;
  size_t first = index.LowerBound(lo_key);
  size_t last = index.LowerBound(hi_key);
  std::printf("range [%u, %u) covers positions [%zu, %zu): %zu rows\n",
              lo_key, hi_key, first, last, last - first);

  // 5. Throughput: time a batch of successful random lookups.
  auto lookups = workload::MatchingLookups(keys, 100'000, /*seed=*/2);
  Timer lookup_timer;
  uint64_t checksum = 0;
  for (Key k : lookups) checksum += static_cast<uint64_t>(index.Find(k));
  double sec = lookup_timer.Seconds();
  std::printf("100k lookups in %.3f s (%.0f ns/lookup, checksum %llu)\n", sec,
              sec / 100'000 * 1e9, static_cast<unsigned long long>(checksum));

  // 6. OLAP maintenance: merge a batch of updates, rebuild from scratch
  //    (§4.1.1: rebuilding is cheap enough to do on every batch).
  auto batch = workload::RandomBatch(keys, /*fraction=*/0.01, /*seed=*/3);
  Timer rebuild_timer;
  keys = workload::ApplyBatch(keys, batch);
  FullCssTree<16> rebuilt(keys);
  std::printf("1%% batch merged + index rebuilt in %.3f ms (now %zu keys)\n",
              rebuild_timer.Millis(), keys.size());

  //    In a live system the same lifecycle runs behind MaintainedIndex:
  //    readers keep probing snapshots (one atomic load each) while the
  //    writer merges and publishes — and a "part:K/" spec rebuilds only
  //    the shards a localized batch touches, not the whole directory.
  MaintainedIndex maintained(*IndexSpec::Parse("part:16/css:16"), keys);
  auto local_batch = workload::RandomBatchInRange(
      keys, /*fraction=*/0.01, keys.front(), keys[keys.size() / 16],
      /*seed=*/5);
  Timer refresh_timer;
  maintained.ApplyBatch(local_batch);
  std::printf("maintained part:16 refresh of a localized 1%% batch: %.3f ms "
              "(%zu of 16 shards rebuilt)\n",
              refresh_timer.Millis(), maintained.stats().shards_rebuilt);

  // 7. The level-tree variant trades a little space for fewer comparisons.
  LevelCssTree<16> level(keys);
  std::printf("level CSS-tree directory: %.1f KB (full: %.1f KB)\n",
              level.SpaceBytes() / 1e3, rebuilt.SpaceBytes() / 1e3);

  // 8. Runtime method selection: an IndexSpec string ("css:16", "lcss:64",
  //    "btree:32", "hash:22", ...) names any index in the suite, and the
  //    AnyIndex facade probes it batch-first — FindBatch amortizes dispatch
  //    and lets the structure overlap the cache misses of adjacent probes.
  auto spec = IndexSpec::Parse(args.GetString("spec", "lcss:16"));
  if (!spec) {
    std::printf("unparseable --spec; %s\n", IndexSpec::GrammarHelp());
    return 1;
  }
  AnyIndex any = BuildIndex(*spec, keys);
  // Regenerate the lookups: step 6's batch deleted some original keys, and
  // this demo is the paper's all-hit workload.
  lookups = workload::MatchingLookups(keys, 100'000, /*seed=*/4);
  std::vector<int64_t> positions(lookups.size());
  Timer batch_timer;
  any.FindBatch(lookups, positions);
  double batch_sec = batch_timer.Seconds();
  uint64_t batch_checksum = 0;
  for (int64_t p : positions) batch_checksum += static_cast<uint64_t>(p);
  std::printf("--spec=%s (%s): 100k batched lookups in %.3f s "
              "(%.0f ns/lookup, checksum %llu)\n",
              spec->ToString().c_str(), any.Name().c_str(), batch_sec,
              batch_sec / static_cast<double>(lookups.size()) * 1e9,
              static_cast<unsigned long long>(batch_checksum));
  return 0;
}
