// Serving-layer quickstart: a long-lived Server owning two key-column
// tables, a writer thread draining the bounded update queue, and sessions
// speaking the tiny statement grammar. Shows the full concurrency
// contract end to end:
//
//   - reads (FIND/COUNT/RANGE) resolve against ONE snapshot and report
//     the version they saw,
//   - writes (INSERT/DELETE) enqueue and return; the writer coalesces the
//     backlog so one refreshed version can absorb many batches,
//   - JOIN pins one snapshot per side and reports both versions,
//   - a parse error comes back with the grammar help, not an exception.
//
//   $ ./serving [--n=200000] [--spec=part:4/css:16]

#include <cstdio>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cssidx;
  CliArgs args(argc, argv);
  size_t n = static_cast<size_t>(args.GetInt("n", 200'000));
  std::string spec_text = args.GetString("spec", "part:4/css:16");
  auto spec = IndexSpec::Parse(spec_text);
  if (!spec) {
    std::printf("bad --spec: %s\n", IndexSpec::GrammarHelp());
    return 1;
  }

  // A server owns its tables; the table set is fixed before Start() so
  // sessions can resolve names without locks. "orders" holds n keys,
  // "customers" a smaller domain the orders join into.
  serve::Server::Options options;
  options.queue_capacity = 32;
  options.admission = serve::Admission::kBlock;
  serve::Server server(options);
  Pcg32 rng(17);
  std::vector<uint32_t> orders(n);
  for (auto& k : orders) k = rng.Below(50'000);
  std::vector<uint32_t> customers(10'000);
  for (size_t i = 0; i < customers.size(); ++i) {
    customers[i] = static_cast<uint32_t>(i * 5);
  }
  server.CreateTable("orders", std::move(orders), *spec);
  server.CreateTable("customers", std::move(customers), *spec);
  server.Start();
  std::printf("serving 2 tables under spec %s\n\n", spec->ToString().c_str());

  // Any number of sessions run concurrently; each is one client's
  // statement executor. Here two sessions share one thread for clarity.
  serve::Session reader = server.OpenSession();
  serve::Session writer = server.OpenSession();

  auto show = [](const char* text, const serve::StatementResult& r) {
    if (!r.ok()) {
      std::printf("%-34s -> error: %s\n", text, r.error.c_str());
      return;
    }
    std::printf("%-34s -> count=%llu v%llu", text,
                static_cast<unsigned long long>(r.count),
                static_cast<unsigned long long>(r.version));
    if (r.version2 != 0) {
      std::printf(" (inner v%llu)",
                  static_cast<unsigned long long>(r.version2));
    }
    if (!r.positions.empty()) {
      std::printf(" positions[0]=%lld",
                  static_cast<long long>(r.positions[0]));
    }
    std::printf("\n");
  };

  // Reads: each resolves against one snapshot; the reported version says
  // exactly which state the numbers describe.
  show("FIND orders 100 200 300", reader.Execute("FIND orders 100 200 300"));
  show("COUNT orders 100", reader.Execute("COUNT orders 100"));
  show("RANGE orders 1000 2000", reader.Execute("RANGE orders 1000 2000"));
  show("JOIN orders customers", reader.Execute("JOIN orders customers"));

  // Writes enqueue and return immediately; the writer thread drains,
  // coalesces per table, and publishes one refreshed version per cycle.
  std::printf("\n");
  show("INSERT orders 100 100 100", writer.Execute("INSERT orders 100 100 100"));
  show("DELETE orders 200", writer.Execute("DELETE orders 200"));
  server.Stop();  // drains every accepted write before returning

  // Post-drain reads see the new version: 100 gained three copies, 200
  // is gone entirely (DELETE removes every occurrence of a key).
  show("COUNT orders 100", reader.Execute("COUNT orders 100"));
  show("COUNT orders 200", reader.Execute("COUNT orders 200"));

  // Malformed input is a result, not an exception.
  serve::StatementResult bad = reader.Execute("RANGE orders backwards");
  std::printf("\nRANGE orders backwards -> %s\n%s\n", bad.error.c_str(),
              serve::StatementGrammarHelp());

  const serve::ServerStats stats = server.writer_stats();
  const serve::QueueStats queue = server.queue_stats();
  std::printf(
      "writer: %llu batches in %llu cycles -> %llu versions published "
      "(%llu keys in, %llu keys out); queue high-water %zu\n",
      static_cast<unsigned long long>(stats.batches_applied),
      static_cast<unsigned long long>(stats.drain_cycles),
      static_cast<unsigned long long>(stats.groups_published),
      static_cast<unsigned long long>(stats.keys_inserted),
      static_cast<unsigned long long>(stats.keys_deleted),
      queue.depth_high_water);
  std::printf("session stats: reader %llu statements / %llu probes, "
              "writer %llu enqueued\n",
              static_cast<unsigned long long>(reader.stats().statements),
              static_cast<unsigned long long>(reader.stats().probes),
              static_cast<unsigned long long>(writer.stats().writes_enqueued));
  return 0;
}
