// Indexed nested-loop join (§2.2): "cheaper random access makes indexed
// nested loop joins more affordable in main memory databases ... This
// approach requires a lot of searching through indexes on the inner
// relation." This example joins an orders table against a customers table
// through each of the suite's index structures and reports the probe cost,
// reproducing the paper's motivation in miniature.
//
//   $ ./indexed_join [--inner=1000000] [--outer=4000000]

#include <cstdio>
#include <vector>

#include "baselines/binary_search.h"
#include "baselines/chained_hash.h"
#include "baselines/t_tree.h"
#include "core/full_css_tree.h"
#include "util/cli.h"
#include "util/timer.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using cssidx::Key;

struct JoinResult {
  size_t matches = 0;
  double seconds = 0;
};

template <typename IndexT>
JoinResult Join(const IndexT& index, const std::vector<Key>& outer_keys) {
  JoinResult r;
  cssidx::Timer timer;
  for (Key k : outer_keys) {
    if (index.Find(k) != cssidx::kNotFound) {
      ++r.matches;  // a real executor would emit the joined row here
    }
  }
  r.seconds = timer.Seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cssidx;
  CliArgs args(argc, argv);
  size_t inner_n = static_cast<size_t>(args.GetInt("inner", 1'000'000));
  size_t outer_n = static_cast<size_t>(args.GetInt("outer", 4'000'000));

  // Inner relation: customers, keyed by customer id (sorted RID list).
  auto customers = workload::DistinctSortedKeys(inner_n, 5, 4);
  // Outer relation: orders; 80% reference an existing customer.
  auto orders = workload::MixedLookups(customers, outer_n, 0.8, 6);
  std::printf("join: %zu orders |><| %zu customers (80%% match rate)\n\n",
              outer_n, inner_n);

  std::printf("%-22s %12s %12s %14s\n", "inner index", "matches", "time (s)",
              "probe ns/row");
  auto report = [&](const char* name, const JoinResult& r, size_t space) {
    std::printf("%-22s %12zu %12.3f %14.0f   (index space %.1f MB)\n", name,
                r.matches, r.seconds,
                r.seconds / static_cast<double>(outer_n) * 1e9, space / 1e6);
  };

  {
    BinarySearchIndex index(customers);
    report("array binary search", Join(index, orders), index.SpaceBytes());
  }
  {
    TTreeIndex<16> index(customers);
    report("T-tree", Join(index, orders), index.SpaceBytes());
  }
  {
    FullCssTree<16> index(customers);
    report("full CSS-tree", Join(index, orders), index.SpaceBytes());
  }
  {
    int bits = 4;
    while ((size_t{1} << bits) < inner_n && bits < 22) ++bits;
    ChainedHashIndex<64> index(customers, bits);
    report("chained hash", Join(index, orders), index.SpaceBytes());
  }

  std::printf("\nThe CSS-tree probes at a fraction of binary search's cost "
              "with ~%.1f%% space overhead;\nhash is faster still but costs "
              "an order of magnitude more memory (Figure 14's trade-off).\n",
              100.0 * FullCssTree<16>(customers).SpaceBytes() /
                  (inner_n * sizeof(Key)));
  return 0;
}
