// Indexed nested-loop join (§2.2): "cheaper random access makes indexed
// nested loop joins more affordable in main memory databases ... This
// approach requires a lot of searching through indexes on the inner
// relation." This example joins an orders table against a customers table
// through every index in the suite and reports the probe cost, comparing
// one-probe-at-a-time scalar access with the batch API (the access pattern
// OLAP front-ends issue), which lets the tree and hash kernels overlap
// their cache misses across neighboring probes — and with the parallel
// batch API, which shards the probe span across a thread pool on top
// (--threads=0 means one executor per hardware thread).
//
//   $ ./indexed_join [--inner=1000000] [--outer=4000000] [--batch=64]
//                    [--threads=0]

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/builder.h"
#include "util/bits.h"
#include "util/cli.h"
#include "util/timer.h"
#include "workload/key_gen.h"
#include "workload/lookup_gen.h"

namespace {

using cssidx::AnyIndex;
using cssidx::Key;

struct JoinResult {
  size_t matches = 0;
  double seconds = 0;
};

// Both joins time exactly the probe work (results land in found[]; a real
// executor would emit joined rows from it) and count matches untimed, so
// the scalar/batch comparison is like for like.
JoinResult ScalarJoin(const AnyIndex& index,
                      const std::vector<Key>& outer_keys) {
  JoinResult r;
  std::vector<int64_t> found(outer_keys.size());
  cssidx::Timer timer;
  for (size_t i = 0; i < outer_keys.size(); ++i) {
    found[i] = index.Find(outer_keys[i]);
  }
  r.seconds = timer.Seconds();
  for (int64_t f : found) {
    if (f != cssidx::kNotFound) ++r.matches;
  }
  return r;
}

JoinResult BatchJoin(const AnyIndex& index,
                     const std::vector<Key>& outer_keys, size_t batch) {
  JoinResult r;
  std::vector<int64_t> found(outer_keys.size());
  cssidx::Timer timer;
  cssidx::FindBlocked(index, outer_keys, batch, found);
  r.seconds = timer.Seconds();
  for (int64_t f : found) {
    if (f != cssidx::kNotFound) ++r.matches;
  }
  return r;
}

// The whole outer column as one probe span, sharded across the pool.
JoinResult ParallelJoin(const AnyIndex& index,
                        const std::vector<Key>& outer_keys, int threads) {
  JoinResult r;
  std::vector<int64_t> found(outer_keys.size());
  cssidx::ProbeOptions opts{.threads = threads};
  cssidx::Timer timer;
  index.FindBatch(outer_keys, found, opts);
  r.seconds = timer.Seconds();
  for (int64_t f : found) {
    if (f != cssidx::kNotFound) ++r.matches;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cssidx;
  CliArgs args(argc, argv);
  size_t inner_n = static_cast<size_t>(args.GetInt("inner", 1'000'000));
  size_t outer_n = static_cast<size_t>(args.GetInt("outer", 4'000'000));
  size_t batch = static_cast<size_t>(args.GetInt("batch", 64));
  int threads = static_cast<int>(args.GetInt("threads", 0));

  // Inner relation: customers, keyed by customer id (sorted RID list).
  auto customers = workload::DistinctSortedKeys(inner_n, 5, 4);
  // Outer relation: orders; 80% reference an existing customer.
  auto orders = workload::MixedLookups(customers, outer_n, 0.8, 6);
  std::printf("join: %zu orders |><| %zu customers (80%% match rate), "
              "batch=%zu, threads=%s (hardware: %d)\n\n",
              outer_n, inner_n, batch,
              threads == 0 ? "auto" : std::to_string(threads).c_str(),
              ThreadPool::HardwareThreads());

  std::printf("%-24s %11s %11s %11s %11s %8s\n", "inner index", "matches",
              "scalar ns", "batch ns", "parallel ns", "speedup");

  int hash_bits = std::clamp(CeilLog2(inner_n), 4, 22);
  size_t css_space = 0;
  for (const char* spec_text :
       {"bin", "ttree:16", "btree:16", "css:16", "lcss:16", "hash"}) {
    IndexSpec spec = *IndexSpec::Parse(spec_text);
    if (!spec.ordered()) spec = spec.WithHashDirBits(hash_bits);
    AnyIndex index = BuildIndex(spec, customers);
    if (spec == IndexSpec()) css_space = index.SpaceBytes();
    JoinResult scalar = ScalarJoin(index, orders);
    JoinResult batched = BatchJoin(index, orders, batch);
    JoinResult parallel = ParallelJoin(index, orders, threads);
    if (scalar.matches != batched.matches ||
        scalar.matches != parallel.matches) {
      std::printf("BUG: scalar, batched, and parallel joins disagree\n");
      return 1;
    }
    double scalar_ns = scalar.seconds / static_cast<double>(outer_n) * 1e9;
    double batch_ns = batched.seconds / static_cast<double>(outer_n) * 1e9;
    double par_ns = parallel.seconds / static_cast<double>(outer_n) * 1e9;
    std::printf(
        "%-24s %11zu %11.0f %11.0f %11.0f %7.2fx   (index space %.1f MB)\n",
        index.Name().c_str(), batched.matches, scalar_ns, batch_ns, par_ns,
        scalar_ns / par_ns, index.SpaceBytes() / 1e6);
  }

  std::printf("\nThe CSS-tree probes at a fraction of binary search's cost "
              "with ~%.1f%% space overhead;\nhash is faster still but costs "
              "an order of magnitude more memory (Figure 14's trade-off).\n"
              "Batched probes overlap the per-probe cache misses the paper "
              "counts, on top of its layout win.\n",
              100.0 * static_cast<double>(css_space) /
                  (inner_n * sizeof(Key)));
  return 0;
}
